// End-to-end tests of tswarpd: the server's /search responses must be
// byte-identical to serializing a direct library call with the same
// options, across range/k-NN, memory/disk indexes, and thread counts —
// the proof that the HTTP layer adds transport, not semantics. /stats is
// checked for consistency against the actual traffic.

#include "server/server.h"

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/generators.h"
#include "seqdb/sequence_database.h"
#include "server/client.h"
#include "server/index_handle.h"
#include "server/json.h"

namespace tswarp::server {
namespace {

seqdb::SequenceDatabase TestDb(std::uint64_t seed = 1) {
  datagen::RandomWalkOptions options;
  options.num_sequences = 12;
  options.avg_length = 40;
  options.length_jitter = 8;
  options.seed = seed;
  return datagen::GenerateRandomWalks(options);
}

/// A query the index is guaranteed to match: a verbatim subsequence.
std::vector<Value> TestQuery(const seqdb::SequenceDatabase& db,
                             std::size_t len = 8) {
  const std::span<const Value> sub = db.Subsequence(0, 2, len);
  return std::vector<Value>(sub.begin(), sub.end());
}

/// Serializes the request body with the same number formatting the parser
/// round-trips, so the server sees exactly the double we searched with.
std::string SearchBody(const std::vector<Value>& query,
                       const std::string& extra) {
  std::string body = "{\"query\":[";
  for (std::size_t i = 0; i < query.size(); ++i) {
    if (i != 0) body.push_back(',');
    AppendJsonNumber(&body, query[i]);
  }
  body.push_back(']');
  body += extra;
  body.push_back('}');
  return body;
}

struct TestServer {
  std::unique_ptr<IndexHandle> handle;
  std::unique_ptr<Server> server;
};

TestServer StartServer(core::Index index, ServerOptions options = {}) {
  TestServer ts;
  ts.handle = std::make_unique<IndexHandle>(std::move(index));
  auto started = Server::Start(ts.handle.get(), options);
  EXPECT_TRUE(started.ok()) << started.status().ToString();
  ts.server = std::move(*started);
  return ts;
}

core::Index BuildIndex(const seqdb::SequenceDatabase& db,
                       core::IndexKind kind, const std::string& disk_path) {
  core::IndexOptions options;
  options.kind = kind;
  options.num_categories = 12;
  options.disk_path = disk_path;
  auto index = core::Index::Build(&db, options);
  EXPECT_TRUE(index.ok()) << index.status().ToString();
  return std::move(*index);
}

struct E2EParam {
  core::IndexKind kind;
  bool disk;
  std::size_t threads;
};

class ServerE2ETest : public ::testing::TestWithParam<E2EParam> {};

TEST_P(ServerE2ETest, SearchMatchesLibraryByteForByte) {
  const E2EParam param = GetParam();
  const seqdb::SequenceDatabase db = TestDb();
  const std::string disk_path =
      param.disk ? ::testing::TempDir() + "/server_e2e_" +
                       std::to_string(static_cast<int>(param.kind)) + "_" +
                       std::to_string(param.threads)
                 : "";
  // Two independent instances of the same index: the server must not be
  // able to influence the direct baseline.
  core::Index direct = BuildIndex(db, param.kind, disk_path);
  core::Index served =
      param.disk ? [&] {
        core::IndexOptions options;
        options.kind = param.kind;
        options.num_categories = 12;
        options.disk_path = disk_path;
        auto reopened = core::Index::Open(&db, options);
        EXPECT_TRUE(reopened.ok()) << reopened.status().ToString();
        return std::move(*reopened);
      }()
                 : BuildIndex(db, param.kind, "");
  TestServer ts = StartServer(std::move(served));
  auto client = HttpClient::Connect("127.0.0.1", ts.server->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  const std::vector<Value> query = TestQuery(db);
  core::QueryOptions opts;
  opts.num_threads = param.threads;
  const std::string thread_suffix =
      ",\"threads\":" + std::to_string(param.threads);

  // Range search.
  const Value epsilon = 6.0;
  const std::vector<core::Match> range =
      direct.Search(query, epsilon, opts);
  EXPECT_FALSE(range.empty());  // The verbatim subsequence matches itself.
  std::string eps_json = ",\"epsilon\":";
  AppendJsonNumber(&eps_json, epsilon);
  auto range_resp =
      client->Post("/search", SearchBody(query, eps_json + thread_suffix));
  ASSERT_TRUE(range_resp.ok()) << range_resp.status().ToString();
  EXPECT_EQ(range_resp->status, 200);
  EXPECT_EQ(range_resp->body, SearchResponseBody("ok", range, nullptr));

  // k-NN search.
  const std::size_t k = 3;
  const std::vector<core::Match> knn = direct.SearchKnn(query, k, opts);
  auto knn_resp = client->Post(
      "/search",
      SearchBody(query, ",\"k\":" + std::to_string(k) + thread_suffix));
  ASSERT_TRUE(knn_resp.ok()) << knn_resp.status().ToString();
  EXPECT_EQ(knn_resp->status, 200);
  EXPECT_EQ(knn_resp->body, SearchResponseBody("ok", knn, nullptr));
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, ServerE2ETest,
    ::testing::Values(
        E2EParam{core::IndexKind::kSuffixTree, false, 1},
        E2EParam{core::IndexKind::kCategorized, false, 1},
        E2EParam{core::IndexKind::kSparse, false, 1},
        E2EParam{core::IndexKind::kSparse, false, 4},
        E2EParam{core::IndexKind::kSparse, true, 1},
        E2EParam{core::IndexKind::kSparse, true, 4}),
    [](const ::testing::TestParamInfo<E2EParam>& info) {
      std::string name = core::IndexKindToString(info.param.kind);
      name += info.param.disk ? "_disk_" : "_memory_";
      name += std::to_string(info.param.threads) + "threads";
      return name;
    });

TEST(ServerSearchOptionsTest, KnobsReachTheDriver) {
  // band / prune / use_lower_bound must change the server's work exactly
  // as they change the library's; with identical answers, comparing the
  // serialized bodies against direct calls with the same knobs proves the
  // plumbing end to end.
  const seqdb::SequenceDatabase db = TestDb(3);
  core::Index direct = BuildIndex(db, core::IndexKind::kCategorized, "");
  TestServer ts = StartServer(
      BuildIndex(db, core::IndexKind::kCategorized, ""));
  auto client = HttpClient::Connect("127.0.0.1", ts.server->port());
  ASSERT_TRUE(client.ok());
  const std::vector<Value> query = TestQuery(db, 6);

  core::QueryOptions banded;
  banded.band = 3;
  const std::vector<core::Match> expected_banded =
      direct.Search(query, 5.0, banded);
  auto banded_resp = client->Post(
      "/search", SearchBody(query, ",\"epsilon\":5,\"band\":3"));
  ASSERT_TRUE(banded_resp.ok());
  EXPECT_EQ(banded_resp->status, 200);
  EXPECT_EQ(banded_resp->body,
            SearchResponseBody("ok", expected_banded, nullptr));

  core::QueryOptions ablated;
  ablated.prune = false;
  ablated.use_lower_bound = false;
  const std::vector<core::Match> expected_ablated =
      direct.Search(query, 5.0, ablated);
  auto ablated_resp = client->Post(
      "/search",
      SearchBody(query,
                 ",\"epsilon\":5,\"prune\":false,\"use_lower_bound\":false"));
  ASSERT_TRUE(ablated_resp.ok());
  EXPECT_EQ(ablated_resp->status, 200);
  EXPECT_EQ(ablated_resp->body,
            SearchResponseBody("ok", expected_ablated, nullptr));

  // include_stats adds a "stats" member whose answers equal the count.
  auto stats_resp = client->Post(
      "/search", SearchBody(query, ",\"epsilon\":5,\"include_stats\":true"));
  ASSERT_TRUE(stats_resp.ok());
  EXPECT_EQ(stats_resp->status, 200);
  auto parsed = ParseJson(stats_resp->body);
  ASSERT_TRUE(parsed.ok());
  const JsonValue* stats = parsed->Find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->Find("answers")->AsNumber(),
            parsed->Find("count")->AsNumber());
}

TEST(ServerStatsTest, CountersReflectTraffic) {
  const seqdb::SequenceDatabase db = TestDb(5);
  TestServer ts =
      StartServer(BuildIndex(db, core::IndexKind::kSparse, ""));
  core::Index direct = BuildIndex(db, core::IndexKind::kSparse, "");
  auto client = HttpClient::Connect("127.0.0.1", ts.server->port());
  ASSERT_TRUE(client.ok());

  const std::vector<Value> query = TestQuery(db);
  std::size_t total_matches = 0;
  const int kSearches = 5;
  for (int i = 0; i < kSearches; ++i) {
    auto resp =
        client->Post("/search", SearchBody(query, ",\"epsilon\":6"));
    ASSERT_TRUE(resp.ok());
    ASSERT_EQ(resp->status, 200);
    auto parsed = ParseJson(resp->body);
    ASSERT_TRUE(parsed.ok());
    total_matches +=
        static_cast<std::size_t>(parsed->Find("count")->AsNumber());
  }
  EXPECT_EQ(total_matches, kSearches * direct.Search(query, 6.0).size());

  auto stats_resp = client->Get("/stats");
  ASSERT_TRUE(stats_resp.ok());
  ASSERT_EQ(stats_resp->status, 200);
  auto stats = ParseJson(stats_resp->body);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->Find("requests")->Find("completed")->AsNumber(),
            kSearches);
  EXPECT_EQ(stats->Find("queue")->Find("admitted")->AsNumber(), kSearches);
  EXPECT_EQ(stats->Find("queue")->Find("rejected")->AsNumber(), 0);
  EXPECT_EQ(stats->Find("search")->Find("answers")->AsNumber(),
            static_cast<double>(total_matches));
  EXPECT_EQ(stats->Find("search")->Find("cancelled")->AsNumber(), 0);
  EXPECT_EQ(stats->Find("draining")->AsBool(), false);

  // The library-side Counters() accessor agrees with the wire stats.
  const ServerCounters counters = ts.server->Counters();
  EXPECT_EQ(counters.completed, static_cast<std::uint64_t>(kSearches));
  EXPECT_EQ(counters.search.answers, total_matches);
}

TEST(ServerConcurrencyTest, ParallelClientsGetExactAnswers) {
  // Several clients in flight at once: every response must still be
  // byte-identical to the direct library call (the coalescer may or may
  // not group them — either way semantics are unchanged).
  const seqdb::SequenceDatabase db = TestDb(7);
  core::Index direct = BuildIndex(db, core::IndexKind::kSparse, "");
  ServerOptions options;
  options.connection_threads = 6;
  options.queue_capacity = 32;
  TestServer ts = StartServer(
      BuildIndex(db, core::IndexKind::kSparse, ""), options);

  const std::vector<Value> query = TestQuery(db);
  const std::string expected =
      SearchResponseBody("ok", direct.Search(query, 6.0), nullptr);
  const std::string body = SearchBody(query, ",\"epsilon\":6");

  const int kClients = 6;
  std::vector<std::string> bodies(kClients);
  std::vector<int> statuses(kClients, 0);
  {
    std::vector<std::thread> clients;
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back([&, i] {
        auto client = HttpClient::Connect("127.0.0.1", ts.server->port());
        if (!client.ok()) return;
        auto resp = client->Post("/search", body);
        if (!resp.ok()) return;
        statuses[i] = resp->status;
        bodies[i] = resp->body;
      });
    }
    for (std::thread& t : clients) t.join();
  }
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(statuses[i], 200) << "client " << i;
    EXPECT_EQ(bodies[i], expected) << "client " << i;
  }
  const ServerCounters counters = ts.server->Counters();
  EXPECT_EQ(counters.completed, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(counters.completed + counters.rejected,
            counters.admitted + counters.rejected);
}

TEST(ServerHealthTest, HealthzFlipsToDrainingOnShutdown) {
  const seqdb::SequenceDatabase db = TestDb(9);
  TestServer ts =
      StartServer(BuildIndex(db, core::IndexKind::kSparse, ""));
  {
    auto client = HttpClient::Connect("127.0.0.1", ts.server->port());
    ASSERT_TRUE(client.ok());
    auto resp = client->Get("/healthz");
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->status, 200);
    EXPECT_EQ(resp->body, "{\"status\":\"ok\"}");
  }
  ts.server->Shutdown();
  // After the drain the listener is gone: new connections are refused.
  auto late = HttpClient::Connect("127.0.0.1", ts.server->port());
  if (late.ok()) {
    auto resp = late->Get("/healthz");
    EXPECT_FALSE(resp.ok() && resp->status == 200);
  }
  // Shutdown is idempotent.
  ts.server->Shutdown();
}

}  // namespace
}  // namespace tswarp::server
