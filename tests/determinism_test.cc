// Determinism guarantees: identical inputs (data seed, options, query)
// must produce identical indexes and identical results, run to run — the
// property that makes the benchmark tables reproducible.

#include <gtest/gtest.h>

#include "core/index.h"
#include "datagen/generators.h"
#include "multivariate/multi_index.h"
#include "test_util.h"

namespace tswarp {
namespace {

TEST(DeterminismTest, IndexBuildsAreIdentical) {
  datagen::StockOptions stock;
  stock.num_sequences = 15;
  stock.avg_length = 50;
  const seqdb::SequenceDatabase db1 = datagen::GenerateStocks(stock);
  const seqdb::SequenceDatabase db2 = datagen::GenerateStocks(stock);
  for (core::IndexKind kind : {core::IndexKind::kSuffixTree,
                               core::IndexKind::kCategorized,
                               core::IndexKind::kSparse}) {
    core::IndexOptions options;
    options.kind = kind;
    options.num_categories = 14;
    auto a = core::Index::Build(&db1, options);
    auto b = core::Index::Build(&db2, options);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->build_info().num_nodes, b->build_info().num_nodes);
    EXPECT_EQ(a->build_info().index_bytes, b->build_info().index_bytes);
    EXPECT_EQ(a->build_info().stored_suffixes,
              b->build_info().stored_suffixes);
  }
}

TEST(DeterminismTest, RepeatedSearchesAreIdentical) {
  datagen::RandomWalkOptions walk;
  walk.num_sequences = 10;
  walk.avg_length = 40;
  const seqdb::SequenceDatabase db = datagen::GenerateRandomWalks(walk);
  core::IndexOptions options;
  options.kind = core::IndexKind::kSparse;
  options.num_categories = 10;
  auto index = core::Index::Build(&db, options);
  ASSERT_TRUE(index.ok());
  const std::vector<Value> q(db.sequence(4).begin(),
                             db.sequence(4).begin() + 6);
  const auto first = index->Search(q, 4.0);
  for (int repeat = 0; repeat < 3; ++repeat) {
    testutil::ExpectSameMatches(first, index->Search(q, 4.0), "repeat");
  }
  const auto knn_first = index->SearchKnn(q, 7);
  const auto knn_again = index->SearchKnn(q, 7);
  ASSERT_EQ(knn_first.size(), knn_again.size());
  for (std::size_t i = 0; i < knn_first.size(); ++i) {
    EXPECT_EQ(knn_first[i], knn_again[i]);
    EXPECT_DOUBLE_EQ(knn_first[i].distance, knn_again[i].distance);
  }
}

TEST(DeterminismTest, KMeansIsSeedStable) {
  datagen::StockOptions stock;
  stock.num_sequences = 10;
  const seqdb::SequenceDatabase db = datagen::GenerateStocks(stock);
  core::IndexOptions options;
  options.kind = core::IndexKind::kSparse;
  options.method = categorize::Method::kKMeans;
  options.num_categories = 8;
  options.seed = 99;
  auto a = core::Index::Build(&db, options);
  auto b = core::Index::Build(&db, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->build_info().index_bytes, b->build_info().index_bytes);
}

TEST(MultivariateEdgeTest, SingleElementSequences) {
  mv::MultiSequenceDatabase db(2);
  db.Add({1.0, 2.0});        // One element.
  db.Add({5.0, 5.0, 6.0, 6.0});
  auto index = mv::MultiIndex::Build(&db, {});
  ASSERT_TRUE(index.ok()) << index.status();
  const std::vector<Value> q = {1.0, 2.0};
  const auto matches = index->Search(q, 1, 0.0);
  ASSERT_GE(matches.size(), 1u);
  EXPECT_EQ(matches[0].seq, 0u);
  EXPECT_DOUBLE_EQ(matches[0].distance, 0.0);
}

TEST(MultivariateEdgeTest, MatchesScanOnTinyGrid) {
  mv::MultiSequenceDatabase db(2);
  db.Add({0, 0, 1, 1, 2, 2, 3, 3});
  db.Add({3, 3, 2, 2});
  mv::MultiIndexOptions options;
  options.categories_per_dim = 1;  // Single cell: filter admits all.
  auto index = mv::MultiIndex::Build(&db, options);
  ASSERT_TRUE(index.ok());
  const std::vector<Value> q = {1, 1, 2, 2};
  testutil::ExpectSameMatches(mv::MultiSeqScan(db, q, 2, 1.5),
                              index->Search(q, 2, 1.5), "single cell");
}

}  // namespace
}  // namespace tswarp
