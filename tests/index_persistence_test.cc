// Persistence of disk-backed indexes: Build writes a fingerprint next to
// the tree bundle; Open re-derives the categorizer deterministically and
// reuses the bundle, returning identical answers without rebuilding.

#include <filesystem>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/index.h"
#include "core/seq_scan.h"
#include "datagen/generators.h"
#include "test_util.h"

namespace tswarp::core {
namespace {

class IndexPersistenceTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tswarp_persist_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    datagen::RandomWalkOptions data;
    data.num_sequences = 12;
    data.avg_length = 40;
    data.seed = 404;
    db_ = datagen::GenerateRandomWalks(data);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  IndexOptions DiskOptions(const std::string& name) {
    IndexOptions options;
    options.kind = IndexKind::kSparse;
    options.num_categories = 10;
    options.disk_path = (dir_ / name).string();
    options.disk_batch_sequences = 4;
    return options;
  }

  std::filesystem::path dir_;
  seqdb::SequenceDatabase db_;
};

TEST_F(IndexPersistenceTest, OpenReturnsIdenticalAnswers) {
  const IndexOptions options = DiskOptions("a");
  auto built = Index::Build(&db_, options);
  ASSERT_TRUE(built.ok()) << built.status();
  auto reopened = Index::Open(&db_, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->build_info().num_nodes,
            built->build_info().num_nodes);
  EXPECT_EQ(reopened->build_info().stored_suffixes,
            built->build_info().stored_suffixes);
  EXPECT_DOUBLE_EQ(reopened->build_info().compaction_ratio,
                   built->build_info().compaction_ratio);

  Rng rng(11);
  for (int qi = 0; qi < 5; ++qi) {
    std::vector<Value> q;
    Value v = rng.Uniform(20, 80);
    for (int i = 0; i < 4; ++i) {
      q.push_back(v);
      v += rng.Gaussian(0, 1);
    }
    const Value eps = rng.Uniform(0, 8);
    testutil::ExpectSameMatches(built->Search(q, eps),
                                reopened->Search(q, eps), "reopened");
    testutil::ExpectSameMatches(SeqScan(db_, q, eps),
                                reopened->Search(q, eps), "vs scan");
  }
}

TEST_F(IndexPersistenceTest, OpenRejectsMissingBundle) {
  auto reopened = Index::Open(&db_, DiskOptions("missing"));
  EXPECT_FALSE(reopened.ok());
}

TEST_F(IndexPersistenceTest, OpenRejectsMemoryOnlyOptions) {
  IndexOptions options;
  options.kind = IndexKind::kSparse;
  auto reopened = Index::Open(&db_, options);
  EXPECT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(IndexPersistenceTest, OpenRejectsChangedOptions) {
  const IndexOptions options = DiskOptions("b");
  ASSERT_TRUE(Index::Build(&db_, options).ok());
  IndexOptions changed = options;
  changed.num_categories = 20;
  auto reopened = Index::Open(&db_, changed);
  EXPECT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(IndexPersistenceTest, OpenRejectsChangedDatabase) {
  const IndexOptions options = DiskOptions("c");
  ASSERT_TRUE(Index::Build(&db_, options).ok());
  seqdb::SequenceDatabase other;
  other.Add({1, 2, 3});
  auto reopened = Index::Open(&other, options);
  EXPECT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace tswarp::core
