// Unit tests for the pieces the unified search driver is assembled from:
// the ResultCollector (shared range/k-NN result collection), the
// deterministic k-NN total order, and direct SearchDriver<Model> runs
// (the same template the tree search, the multivariate index, and any
// future distance model instantiate).

#include <vector>

#include <gtest/gtest.h>

#include "core/distance_models.h"
#include "core/match.h"
#include "core/result_collector.h"
#include "core/search_driver.h"
#include "core/tree_search.h"
#include "suffixtree/suffix_tree.h"
#include "suffixtree/symbol_database.h"

namespace tswarp::core {
namespace {

TEST(KnnMatchLessTest, OrdersByDistanceThenPosition) {
  const Match a{0, 0, 1, 1.0};
  const Match b{0, 0, 1, 2.0};
  EXPECT_TRUE(KnnMatchLess(a, b));
  EXPECT_FALSE(KnnMatchLess(b, a));
  // Equal distance: falls back to (seq, start, len) — a total order, so
  // k-NN results are deterministic even with tied distances.
  const Match c{1, 0, 1, 1.0};
  const Match d{0, 3, 1, 1.0};
  EXPECT_TRUE(KnnMatchLess(a, c));
  EXPECT_TRUE(KnnMatchLess(d, c));
  EXPECT_FALSE(KnnMatchLess(c, d));
}

TEST(ResultCollectorTest, RangeModeKeepsEpsilonAndSortsOnTake) {
  ResultCollector collector(/*epsilon=*/5.0, /*knn_k=*/0);
  EXPECT_EQ(collector.epsilon(), 5.0);
  std::vector<Match> local;
  collector.Report({2, 0, 1, 4.0}, &local);
  collector.Report({0, 1, 2, 3.0}, &local);
  collector.Report({0, 0, 1, 1.0}, &local);
  EXPECT_EQ(collector.epsilon(), 5.0);  // Range mode never shrinks.
  collector.DrainRange(&local);
  const std::vector<Match> out = collector.Take();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].seq, 0u);
  EXPECT_EQ(out[0].start, 0u);
  EXPECT_EQ(out[1].seq, 0u);
  EXPECT_EQ(out[1].start, 1u);
  EXPECT_EQ(out[2].seq, 2u);
}

TEST(ResultCollectorTest, KnnModeShrinksEpsilonMonotonically) {
  ResultCollector collector(/*epsilon=*/0.0, /*knn_k=*/2);
  EXPECT_EQ(collector.epsilon(), kInfinity);  // Starts unbounded.
  collector.Report({0, 0, 1, 5.0}, nullptr);
  EXPECT_EQ(collector.epsilon(), kInfinity);  // Heap not yet full.
  collector.Report({0, 1, 1, 3.0}, nullptr);
  EXPECT_EQ(collector.epsilon(), 5.0);  // Full: k-th best distance.
  collector.Report({0, 2, 1, 4.0}, nullptr);
  EXPECT_EQ(collector.epsilon(), 4.0);  // 5.0 evicted.
  collector.Report({0, 3, 1, 9.0}, nullptr);
  EXPECT_EQ(collector.epsilon(), 4.0);  // Worse match ignored.
  const std::vector<Match> out = collector.Take();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].distance, 3.0);
  EXPECT_EQ(out[1].distance, 4.0);
}

TEST(ResultCollectorTest, KnnTieAtBoundaryIsDeterministic) {
  // Two matches with the k-th distance: the one earlier in
  // (seq, start, len) wins, regardless of report order.
  for (const bool reversed : {false, true}) {
    ResultCollector collector(/*epsilon=*/0.0, /*knn_k=*/1);
    const Match early{0, 1, 1, 2.0};
    const Match late{3, 0, 1, 2.0};
    collector.Report(reversed ? late : early, nullptr);
    collector.Report(reversed ? early : late, nullptr);
    const std::vector<Match> out = collector.Take();
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].seq, 0u) << "reversed=" << reversed;
  }
}

/// A tiny exact-value index built by hand: three sequences over the
/// symbol alphabet {0, 1, 2} decoding to {1.0, 5.0, 9.0}.
struct TinyExactIndex {
  TinyExactIndex()
      : symbol_values({1.0, 5.0, 9.0}),
        symbols(std::vector<std::vector<Symbol>>{
            {0, 1, 2, 1}, {2, 2, 0}, {1, 0, 1, 0, 2}}),
        tree(suffixtree::BuildSuffixTree(symbols, {})) {}

  std::vector<Value> symbol_values;
  suffixtree::SymbolDatabase symbols;
  suffixtree::SuffixTree tree;
};

TEST(SearchDriverTest, DirectExactModelRunMatchesTreeSearch) {
  const TinyExactIndex tiny;
  const std::vector<Value> query = {1.0, 5.0};
  const Value eps = 4.5;

  TreeSearchConfig config;
  config.tree = &tiny.tree;
  config.symbol_values = &tiny.symbol_values;
  config.exact = true;
  SearchStats via_tree_search;
  const std::vector<Match> expected =
      TreeSearch(config, query, eps, &via_tree_search);
  ASSERT_FALSE(expected.empty());

  // The same search, driving the template directly the way any new
  // distance model would.
  DriverConfig driver;
  driver.tree = &tiny.tree;
  driver.query_length = query.size();
  driver.query = query;  // Univariate models need the bound query span.
  const ExactModel model(query, &tiny.symbol_values);
  for (const std::size_t threads : {0u, 2u}) {
    DriverConfig run = driver;
    run.num_threads = threads;
    QueryContext ctx(eps, /*knn_k=*/0);
    SearchStats stats;
    const std::vector<Match> got = RunSearchDriver(run, model, &ctx, &stats);
    ASSERT_EQ(expected.size(), got.size()) << "threads " << threads;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i].seq, got[i].seq);
      EXPECT_EQ(expected[i].start, got[i].start);
      EXPECT_EQ(expected[i].len, got[i].len);
      EXPECT_EQ(expected[i].distance, got[i].distance);
    }
    EXPECT_EQ(stats.answers, via_tree_search.answers);
  }
}

TEST(SearchDriverTest, KnnRunThroughContextShrinksThreshold) {
  const TinyExactIndex tiny;
  const std::vector<Value> query = {5.0};
  DriverConfig driver;
  driver.tree = &tiny.tree;
  driver.query_length = query.size();
  driver.query = query;  // Univariate models need the bound query span.
  const ExactModel model(query, &tiny.symbol_values);
  QueryContext ctx(/*epsilon=*/0.0, /*knn_k=*/3);
  SearchStats stats;
  const std::vector<Match> got =
      RunSearchDriver(driver, model, &ctx, &stats);
  ASSERT_EQ(got.size(), 3u);
  // Sorted by (distance, seq, start, len); the database holds four exact
  // occurrences of value 5.0, so all three results are distance 0.
  EXPECT_EQ(got[0].distance, 0.0);
  EXPECT_EQ(got[2].distance, 0.0);
  EXPECT_TRUE(KnnMatchLess(got[0], got[1]));
  EXPECT_TRUE(KnnMatchLess(got[1], got[2]));
  EXPECT_EQ(ctx.collector.epsilon(), 0.0);  // Shrunk to the k-th best.
  EXPECT_EQ(stats.answers, 3u);
}

}  // namespace
}  // namespace tswarp::core
