// Tests anchored directly to statements and worked examples in the paper
// (Park, Chu, Yoon, Hsu, ICDE 2000), one per claim.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dictionary.h"
#include "core/index.h"
#include "core/seq_scan.h"
#include "datagen/generators.h"
#include "dtw/dtw.h"
#include "dtw/warping_table.h"
#include "suffixtree/suffix_tree.h"
#include "test_util.h"

namespace tswarp {
namespace {

// Section 1: "The Euclidean distance between S2 and any subsequence of
// length four of S1 is greater than 1.41. However, if we duplicate every
// element of S2 ... the two sequences are identical."
TEST(PaperClaimsTest, IntroductionEuclideanVsWarping) {
  const std::vector<Value> s1 = {20, 20, 21, 21, 20, 20, 23, 23};
  const std::vector<Value> s2 = {20, 21, 20, 23};
  for (std::size_t start = 0; start + 4 <= s1.size(); ++start) {
    double euclid_sq = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      const double d = s1[start + i] - s2[i];
      euclid_sq += d * d;
    }
    EXPECT_GT(std::sqrt(euclid_sq), 1.41);
  }
  EXPECT_DOUBLE_EQ(dtw::DtwDistance(s2, s1), 0.0);
}

// Figure 2: the generalized suffix tree built from S5 = <4,5,6,7,6,6> and
// S6 = <4,6,7,8> stores exactly the suffixes of both sequences.
TEST(PaperClaimsTest, Figure2GeneralizedSuffixTree) {
  seqdb::SequenceDatabase db;
  db.Add({4, 5, 6, 7, 6, 6});
  db.Add({4, 6, 7, 8});
  suffixtree::SymbolDatabase symbols;
  std::vector<Value> symbol_values;
  core::DictionaryEncode(db, &symbols, &symbol_values);
  const suffixtree::SuffixTree tree = suffixtree::BuildSuffixTree(symbols);

  // 6 + 4 = 10 suffixes, each stored exactly once.
  EXPECT_EQ(tree.NumOccurrences(), 10u);
  // Collect (path, occurrence) pairs and verify each suffix's path equals
  // its dictionary-encoded content.
  struct Frame {
    suffixtree::NodeId node;
    std::vector<Symbol> path;
  };
  std::multimap<std::vector<Symbol>, std::pair<SeqId, Pos>> found;
  std::vector<Frame> stack = {{tree.Root(), {}}};
  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    std::vector<suffixtree::OccurrenceRec> occs;
    tree.GetOccurrences(f.node, &occs);
    for (const auto& o : occs) found.emplace(f.path,
                                             std::make_pair(o.seq, o.pos));
    suffixtree::Children children;
    tree.GetChildren(f.node, &children);
    for (const auto& e : children.edges) {
      Frame next{e.child, f.path};
      const auto label = children.Label(e);
      next.path.insert(next.path.end(), label.begin(), label.end());
      stack.push_back(std::move(next));
    }
  }
  for (SeqId t = 0; t < symbols.size(); ++t) {
    const auto& cs = symbols.sequence(t);
    for (Pos p = 0; p < cs.size(); ++p) {
      const std::vector<Symbol> suffix(cs.begin() + p, cs.end());
      auto [lo, hi] = found.equal_range(suffix);
      bool present = false;
      for (auto it = lo; it != hi; ++it) {
        if (it->second == std::make_pair(t, p)) present = true;
      }
      EXPECT_TRUE(present) << "leaf (" << t << ", " << p + 1
                           << ") of Figure 2 missing";
    }
  }
  // The shared prefixes of Figure 2: "4" (both sequences' full suffixes
  // start with it) and "6 7" / "7" / "6" branches exist, so the tree has
  // strictly fewer label symbols than the total suffix mass.
  EXPECT_LT(tree.NumLabelSymbols(), 6u * 7u / 2u + 4u * 5u / 2u);
}

// Theorem 1 as used by Filter-ST: "If epsilon is 3, after inspecting
// row 3, we can determine that the distance between S3 and S4 is greater
// than epsilon because all columns of the row 3 have values greater
// than 3. Therefore, we do not have to fill the remaining three rows."
TEST(PaperClaimsTest, Theorem1WorkedExample) {
  const std::vector<Value> s3 = {3, 4, 3};
  const std::vector<Value> s4 = {4, 5, 6, 7, 6, 6};
  dtw::WarpingTable table(s3);
  table.PushRowValue(s4[0]);
  EXPECT_LE(table.RowMin(), 3.0);  // Row 1: min is 1.
  table.PushRowValue(s4[1]);
  EXPECT_LE(table.RowMin(), 3.0);  // Row 2: min is 2.
  table.PushRowValue(s4[2]);
  EXPECT_GT(table.RowMin(), 3.0);  // Row 3: min is 4 -> prune.
  // And indeed the final distance (12) exceeds 3.
  EXPECT_GT(dtw::DtwDistance(s3, s4), 3.0);
}

// Section 5: "given two categories C1=[0.1,3.9] and C2=[4.0,10.0],
// S7=<5.27,2.56,3.85> is transformed to CS7=<C2,C1,C1>".
TEST(PaperClaimsTest, Section5CategorizationExample) {
  auto alphabet = categorize::Alphabet::FromBoundaries({0.1, 3.95, 10.0})
                      .value();
  const std::vector<Value> s7 = {5.27, 2.56, 3.85};
  const std::vector<Symbol> cs7 = categorize::Convert(s7, alphabet);
  EXPECT_EQ(cs7, (std::vector<Symbol>{1, 0, 0}));
}

// Section 6.1: "for CS8 = <C1,C1,C1,C3,C2,C2>, only the three suffixes
// (CS8[1:-], CS8[4:-], and CS8[5:-]) are stored in a sparse suffix tree."
TEST(PaperClaimsTest, Section6SparseSelectionExample) {
  suffixtree::SymbolDatabase db;
  db.Add({1, 1, 1, 3, 2, 2});
  std::vector<Pos> stored;
  for (Pos p = 0; p < 6; ++p) {
    if (db.IsRunStart(0, p)) stored.push_back(p);
  }
  // 1-based positions 1, 4, 5 are 0-based 0, 3, 4.
  EXPECT_EQ(stored, (std::vector<Pos>{0, 3, 4}));
}

// Section 6: the compaction ratio r = non-stored / total.
TEST(PaperClaimsTest, CompactionRatioDefinition) {
  seqdb::SequenceDatabase db;
  db.Add({1, 1, 1, 1, 5, 5, 9, 9});  // Runs of 4, 2, 2 under 3 categories.
  core::IndexOptions options;
  options.kind = core::IndexKind::kSparse;
  // Equal-length categories so 1 / 5 / 9 land in distinct categories
  // (max-entropy quantiles would merge two of them on this tiny input).
  options.method = categorize::Method::kEqualLength;
  options.num_categories = 3;
  auto index = core::Index::Build(&db, options);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->build_info().stored_suffixes, 3u);
  EXPECT_DOUBLE_EQ(index->build_info().compaction_ratio, 5.0 / 8.0);
}

// Abstract: "our proposed technique guarantees no false dismissals" —
// spot-checked here on the paper's own intro sequences embedded in noise.
TEST(PaperClaimsTest, NoFalseDismissalOnIntroSequences) {
  seqdb::SequenceDatabase db;
  db.Add({1, 7, 20, 20, 21, 21, 20, 20, 23, 23, 9, 2});
  db.Add({30, 31, 20, 21, 20, 23, 35});
  const std::vector<Value> q = {20, 21, 20, 23};
  for (core::IndexKind kind : {core::IndexKind::kSuffixTree,
                               core::IndexKind::kCategorized,
                               core::IndexKind::kSparse}) {
    core::IndexOptions options;
    options.kind = kind;
    options.num_categories = 6;
    auto index = core::Index::Build(&db, options);
    ASSERT_TRUE(index.ok());
    const auto matches = index->Search(q, 0.0);
    testutil::ExpectSameMatches(core::SeqScan(db, q, 0.0), matches,
                                core::IndexKindToString(kind));
    // The warped occurrence in S0 and the literal one in S1 both appear.
    bool s0 = false, s1 = false;
    for (const auto& m : matches) {
      if (m.seq == 0 && m.start == 2 && m.len == 8) s0 = true;
      if (m.seq == 1 && m.start == 2 && m.len == 4) s1 = true;
    }
    EXPECT_TRUE(s0) << "stretched occurrence dismissed";
    EXPECT_TRUE(s1) << "literal occurrence dismissed";
  }
}

// Abstract, sharpened for the envelope fast path: the LB_Keogh /
// LB_Improved prefilter added in front of the exact-DTW post-processing
// must keep the no-false-dismissal guarantee. On the paper workload the
// lb-prefiltered results must equal the unfiltered results across an
// epsilon sweep that includes the exactness edges: epsilon = 0 (only
// exact warping matches survive every screen) and an epsilon large
// enough that everything matches (no screen may fire spuriously).
TEST(PaperClaimsTest, LowerBoundCascadeNeverDismissesOnPaperWorkload) {
  datagen::StockOptions gen;  // The paper's stock model, shrunk for test
  gen.num_sequences = 24;     // runtime; same value distribution.
  gen.avg_length = 50;
  gen.seed = 4;
  const seqdb::SequenceDatabase db = datagen::GenerateStocks(gen);
  // A query cut from the data so epsilon = 0 has at least one answer.
  const std::vector<Value> q(db.sequence(5).begin() + 7,
                             db.sequence(5).begin() + 13);
  // Matching everything needs epsilon >= max D_tw; bound it by the value
  // range: every path cell costs at most (hi - lo), and a path has at
  // most |Q| + max_len cells.
  const auto [lo, hi] = db.ValueRange();
  Value max_len = 0;
  for (SeqId id = 0; id < db.size(); ++id) {
    max_len = std::max(max_len, static_cast<Value>(db.sequence(id).size()));
  }
  const Value match_all =
      (hi - lo) * (static_cast<Value>(q.size()) + max_len);

  for (core::IndexKind kind : {core::IndexKind::kSuffixTree,
                               core::IndexKind::kCategorized,
                               core::IndexKind::kSparse}) {
    core::IndexOptions options;
    options.kind = kind;
    options.num_categories = 10;
    auto index = core::Index::Build(&db, options);
    ASSERT_TRUE(index.ok());
    for (const Value eps : {0.0, 1.0, 5.0, 25.0, match_all}) {
      core::QueryOptions unfiltered;
      unfiltered.use_lower_bound = false;
      const auto expected = index->Search(q, eps, unfiltered);
      const auto fast = index->Search(q, eps, {});
      testutil::ExpectSameMatches(
          expected, fast,
          std::string(core::IndexKindToString(kind)) + " eps=" +
              std::to_string(eps));
      if (eps == 0.0) {
        EXPECT_FALSE(fast.empty()) << "the embedded query itself must "
                                      "survive the cascade at epsilon 0";
      }
      if (eps == match_all) {
        // Every subsequence matches: the screens must all pass through.
        std::uint64_t total = 0;
        for (SeqId id = 0; id < db.size(); ++id) {
          const auto n = db.sequence(id).size();
          total += n * (n + 1) / 2;
        }
        EXPECT_EQ(fast.size(), total);
      }
    }
    // The same sweep against the SeqScan ground truth at one mid epsilon.
    testutil::ExpectSameMatches(core::SeqScan(db, q, 5.0),
                                index->Search(q, 5.0, {}),
                                std::string("vs-scan ") +
                                    core::IndexKindToString(kind));
  }
}

}  // namespace
}  // namespace tswarp
