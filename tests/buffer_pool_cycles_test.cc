// Buffer pool persistence cycles: random write/flush/reopen workloads
// against a shadow buffer, across pool capacities, verifying that data
// survives arbitrary eviction orders and process "restarts" (pool
// teardown + fresh pool over the same file).

#include <filesystem>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/buffer_pool.h"
#include "storage/paged_file.h"

namespace tswarp::storage {
namespace {

class BufferPoolCycleTest : public testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("tswarp_pool_cycle_" + std::to_string(::getpid()) + "_" +
              std::to_string(GetParam()) + ".dat"))
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path_;
};

TEST_P(BufferPoolCycleTest, SurvivesReopenCycles) {
  const std::size_t capacity = GetParam();
  const std::size_t kBytes = 5 * PagedFile::kPageSize;
  std::vector<std::uint8_t> shadow(kBytes, 0);
  Rng rng(9000 + capacity);

  auto file_or = PagedFile::Create(path_);
  ASSERT_TRUE(file_or.ok());
  auto file = std::make_unique<PagedFile>(std::move(file_or).value());
  auto pool = std::make_unique<BufferPool>(file.get(), capacity);

  for (int cycle = 0; cycle < 5; ++cycle) {
    for (int op = 0; op < 120; ++op) {
      const auto off = static_cast<std::uint64_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(kBytes) - 32));
      const auto n = static_cast<std::size_t>(rng.UniformInt(1, 32));
      if (rng.Coin(0.6)) {
        std::vector<std::uint8_t> data(n);
        for (auto& b : data) {
          b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
        }
        ASSERT_TRUE(pool->Write(off, data.data(), n).ok());
        std::copy(data.begin(), data.end(),
                  shadow.begin() + static_cast<long>(off));
      } else {
        std::vector<std::uint8_t> data(n);
        ASSERT_TRUE(pool->Read(off, data.data(), n).ok());
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(data[i], shadow[off + i])
              << "cycle " << cycle << " offset " << off + i;
        }
      }
    }
    // "Restart": flush, drop the pool and the file handle, reopen.
    ASSERT_TRUE(pool->Flush().ok());
    pool.reset();
    file.reset();
    auto reopened = PagedFile::Open(path_, /*writable=*/true);
    ASSERT_TRUE(reopened.ok());
    file = std::make_unique<PagedFile>(std::move(reopened).value());
    pool = std::make_unique<BufferPool>(file.get(), capacity);
    // Full verification after reopen.
    std::vector<std::uint8_t> all(kBytes);
    ASSERT_TRUE(pool->Read(0, all.data(), kBytes).ok());
    ASSERT_EQ(all, shadow) << "cycle " << cycle;
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, BufferPoolCycleTest,
                         testing::Values(1u, 2u, 3u, 8u, 64u),
                         [](const testing::TestParamInfo<std::size_t>& info) {
                           return "cap" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace tswarp::storage
