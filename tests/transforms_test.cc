#include "seqdb/transforms.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "common/random.h"

namespace tswarp::seqdb {
namespace {

TEST(ZNormalizeTest, MeanZeroUnitVariance) {
  Rng rng(1);
  Sequence s;
  for (int i = 0; i < 200; ++i) s.push_back(rng.Uniform(-50, 100));
  const Sequence z = ZNormalize(s);
  ASSERT_EQ(z.size(), s.size());
  const double mean = std::accumulate(z.begin(), z.end(), 0.0) /
                      static_cast<double>(z.size());
  double var = 0.0;
  for (Value v : z) var += (v - mean) * (v - mean);
  var /= static_cast<double>(z.size());
  EXPECT_NEAR(mean, 0.0, 1e-9);
  EXPECT_NEAR(var, 1.0, 1e-9);
}

TEST(ZNormalizeTest, ShiftAndScaleInvariant) {
  const Sequence s = {1, 2, 3, 4, 5};
  Sequence shifted;
  for (Value v : s) shifted.push_back(3.0 * v + 17.0);
  const Sequence za = ZNormalize(s);
  const Sequence zb = ZNormalize(shifted);
  for (std::size_t i = 0; i < za.size(); ++i) {
    EXPECT_NEAR(za[i], zb[i], 1e-9);
  }
}

TEST(ZNormalizeTest, ConstantSequenceBecomesZeros) {
  const Sequence z = ZNormalize(Sequence(10, 42.0));
  for (Value v : z) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(MovingAverageTest, WindowOneIsIdentity) {
  const Sequence s = {3, 1, 4, 1, 5};
  EXPECT_EQ(MovingAverage(s, 1), s);
}

TEST(MovingAverageTest, KnownValues) {
  const Sequence s = {2, 4, 6, 8};
  const Sequence m = MovingAverage(s, 2);
  ASSERT_EQ(m.size(), 4u);
  EXPECT_DOUBLE_EQ(m[0], 2);        // Head window of 1.
  EXPECT_DOUBLE_EQ(m[1], 3);
  EXPECT_DOUBLE_EQ(m[2], 5);
  EXPECT_DOUBLE_EQ(m[3], 7);
}

TEST(MovingAverageTest, LargeWindowConvergesToPrefixMeans) {
  const Sequence s = {1, 2, 3};
  const Sequence m = MovingAverage(s, 100);
  EXPECT_DOUBLE_EQ(m[0], 1.0);
  EXPECT_DOUBLE_EQ(m[1], 1.5);
  EXPECT_DOUBLE_EQ(m[2], 2.0);
}

TEST(DownsampleTest, EveryKth) {
  const Sequence s = {0, 1, 2, 3, 4, 5, 6};
  EXPECT_EQ(Downsample(s, 2), (Sequence{0, 2, 4, 6}));
  EXPECT_EQ(Downsample(s, 3), (Sequence{0, 3, 6}));
  EXPECT_EQ(Downsample(s, 1), s);
  EXPECT_EQ(Downsample(s, 10), (Sequence{0}));
}

TEST(PiecewiseAggregateTest, SegmentMeans) {
  const Sequence s = {1, 1, 5, 5, 9, 9};
  EXPECT_EQ(PiecewiseAggregate(s, 3), (Sequence{1, 5, 9}));
  EXPECT_EQ(PiecewiseAggregate(s, 1), (Sequence{5}));
  EXPECT_EQ(PiecewiseAggregate(s, 6), s);
}

TEST(PiecewiseAggregateTest, UnevenSegments) {
  const Sequence s = {1, 2, 3, 4, 5};
  const Sequence p = PiecewiseAggregate(s, 2);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_DOUBLE_EQ(p[0], 1.5);  // {1,2}
  EXPECT_DOUBLE_EQ(p[1], 4.0);  // {3,4,5}
}

TEST(TransformDatabaseTest, AppliesToEverySequence) {
  SequenceDatabase db;
  db.Add({1, 2, 3});
  db.Add({10, 20});
  const SequenceDatabase z = TransformDatabase(
      db, [](std::span<const Value> s) { return ZNormalize(s); });
  ASSERT_EQ(z.size(), 2u);
  EXPECT_EQ(z.sequence(0).size(), 3u);
  EXPECT_EQ(z.sequence(1).size(), 2u);
  EXPECT_NEAR(std::accumulate(z.sequence(0).begin(), z.sequence(0).end(),
                              0.0),
              0.0, 1e-9);
}

}  // namespace
}  // namespace tswarp::seqdb
