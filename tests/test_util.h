#ifndef TSWARP_TESTS_TEST_UTIL_H_
#define TSWARP_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/match.h"

namespace tswarp::testutil {

/// Asserts two match sets are identical as sets of (seq, start, len) and
/// that the reported distances agree.
inline void ExpectSameMatches(const std::vector<core::Match>& expected,
                              const std::vector<core::Match>& actual,
                              const std::string& context) {
  std::vector<core::Match> e = expected;
  std::vector<core::Match> a = actual;
  std::sort(e.begin(), e.end(), core::MatchLess);
  std::sort(a.begin(), a.end(), core::MatchLess);
  ASSERT_EQ(e.size(), a.size()) << context << ": result-set sizes differ";
  for (std::size_t i = 0; i < e.size(); ++i) {
    EXPECT_EQ(e[i].seq, a[i].seq) << context << " at " << i;
    EXPECT_EQ(e[i].start, a[i].start) << context << " at " << i;
    EXPECT_EQ(e[i].len, a[i].len) << context << " at " << i;
    EXPECT_NEAR(e[i].distance, a[i].distance, 1e-9) << context << " at " << i;
  }
}

}  // namespace tswarp::testutil

#endif  // TSWARP_TESTS_TEST_UTIL_H_
