// storage::MappedFile / MappedRegion / SyncDir: the single mmap choke
// point. Mapping semantics (whole file, read-only, empty-file special
// case), up-front region validation (truncation -> Corruption, never a
// later SIGBUS), move-only ownership, and directory fsync errors.

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "storage/mmap_file.h"

namespace tswarp::storage {
namespace {

class MmapFileTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tswarp_mmap_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::string WriteFile(const std::string& name, const std::string& body) {
    const std::string path = Path(name);
    std::ofstream f(path, std::ios::binary);
    f.write(body.data(), static_cast<std::streamsize>(body.size()));
    return path;
  }

  std::filesystem::path dir_;
};

TEST_F(MmapFileTest, MapsWholeFileReadOnly) {
  const std::string body = "0123456789abcdef";
  const std::string path = WriteFile("f", body);
  auto file = MappedFile::Open(path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_EQ(file->size_bytes(), body.size());
  EXPECT_EQ(file->view(), body);
  EXPECT_EQ(file->bytes().size(), body.size());
  EXPECT_EQ(file->path(), path);
}

TEST_F(MmapFileTest, MissingFileIsAStatusNotACrash) {
  auto file = MappedFile::Open(Path("does_not_exist"));
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kIOError);
}

TEST_F(MmapFileTest, EmptyFileMapsToEmptySpan) {
  const std::string path = WriteFile("empty", "");
  auto file = MappedFile::Open(path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_EQ(file->size_bytes(), 0u);
  EXPECT_TRUE(file->bytes().empty());
}

TEST_F(MmapFileTest, MoveTransfersTheMapping) {
  const std::string body = "payload";
  auto file = MappedFile::Open(WriteFile("m", body));
  ASSERT_TRUE(file.ok());
  MappedFile moved = std::move(*file);
  EXPECT_EQ(moved.view(), body);
  EXPECT_EQ(file->size_bytes(), 0u);  // Moved-from: empty, destructible.
}

TEST_F(MmapFileTest, AdviseAndResidencyAreBestEffort) {
  const std::string body(8192, 'x');
  auto file = MappedFile::Open(WriteFile("r", body));
  ASSERT_TRUE(file.ok());
  file->Advise(AccessHint::kWillNeed);
  file->Advise(AccessHint::kRandom);
  // The file was just written and then touched through the mapping, so
  // some of it is resident; the probe must never exceed the mapping.
  volatile char sink = file->view()[0];
  (void)sink;
  EXPECT_LE(file->ResidentBytes(), ((body.size() + 4095) / 4096) * 4096);
}

TEST_F(MmapFileTest, RegionValidatesExtentUpFront) {
  const std::string body(64, 'r');  // Room for exactly 4 16-byte records.
  auto file = MappedFile::Open(WriteFile("g", body));
  ASSERT_TRUE(file.ok());

  auto ok_region = MappedRegion::Create(*file, 16, 4, "records");
  ASSERT_TRUE(ok_region.ok()) << ok_region.status().ToString();
  EXPECT_EQ(ok_region->record_count(), 4u);
  EXPECT_EQ(ok_region->RecordAt(0), file->bytes().data());
  EXPECT_EQ(ok_region->RecordAt(3), file->bytes().data() + 48);

  // One record too many: refused at creation, not at dereference.
  auto truncated = MappedRegion::Create(*file, 16, 5, "records");
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), StatusCode::kCorruption);
}

TEST_F(MmapFileTest, EmptyRegionOverEmptyFileIsFine) {
  auto file = MappedFile::Open(WriteFile("z", ""));
  ASSERT_TRUE(file.ok());
  auto region = MappedRegion::Create(*file, 16, 0, "records");
  ASSERT_TRUE(region.ok()) << region.status().ToString();
  EXPECT_EQ(region->record_count(), 0u);
  auto nonempty = MappedRegion::Create(*file, 16, 1, "records");
  EXPECT_FALSE(nonempty.ok());
}

TEST_F(MmapFileTest, IoModeRoundTrips) {
  EXPECT_STREQ(IoModeToString(IoMode::kBuffered), "buffered");
  EXPECT_STREQ(IoModeToString(IoMode::kMmap), "mmap");
  auto buffered = ParseIoMode("buffered");
  ASSERT_TRUE(buffered.ok());
  EXPECT_EQ(*buffered, IoMode::kBuffered);
  auto mapped = ParseIoMode("mmap");
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(*mapped, IoMode::kMmap);
  EXPECT_FALSE(ParseIoMode("mapped").ok());
  EXPECT_FALSE(ParseIoMode("").ok());
}

TEST_F(MmapFileTest, SyncDirSucceedsOnARealDirectory) {
  EXPECT_TRUE(SyncDir(dir_.string()).ok());
  EXPECT_TRUE(SyncDir(".").ok());
}

TEST_F(MmapFileTest, SyncDirReportsMissingDirectory) {
  const Status status = SyncDir(Path("nope"));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace tswarp::storage
