#include "storage/buffer_manager.h"
#include "storage/paged_file.h"

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace tswarp::storage {
namespace {

class StorageTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tswarp_storage_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(StorageTest, PagedFileRoundTrip) {
  auto file_or = PagedFile::Create(Path("a.dat"));
  ASSERT_TRUE(file_or.ok());
  PagedFile file = std::move(file_or).value();
  std::vector<std::byte> page(PagedFile::kPageSize);
  for (std::size_t i = 0; i < page.size(); ++i) {
    page[i] = static_cast<std::byte>(i % 251);
  }
  ASSERT_TRUE(file.WritePage(3, page).ok());
  EXPECT_EQ(file.SizeBytes(), 4 * PagedFile::kPageSize);

  std::vector<std::byte> read(PagedFile::kPageSize);
  ASSERT_TRUE(file.ReadPage(3, read).ok());
  EXPECT_EQ(std::memcmp(read.data(), page.data(), page.size()), 0);
}

TEST_F(StorageTest, ReadBeyondEofIsZeroFilled) {
  auto file_or = PagedFile::Create(Path("b.dat"));
  ASSERT_TRUE(file_or.ok());
  PagedFile file = std::move(file_or).value();
  std::vector<std::byte> read(PagedFile::kPageSize, std::byte{0xFF});
  ASSERT_TRUE(file.ReadPage(10, read).ok());
  for (std::byte b : read) EXPECT_EQ(b, std::byte{0});
}

TEST_F(StorageTest, OpenMissingFileFails) {
  auto file_or = PagedFile::Open(Path("missing.dat"), false);
  EXPECT_FALSE(file_or.ok());
  EXPECT_EQ(file_or.status().code(), StatusCode::kIOError);
}

TEST_F(StorageTest, PersistAcrossReopen) {
  {
    auto file_or = PagedFile::Create(Path("c.dat"));
    ASSERT_TRUE(file_or.ok());
    PagedFile file = std::move(file_or).value();
    std::vector<std::byte> page(PagedFile::kPageSize, std::byte{0x5A});
    ASSERT_TRUE(file.WritePage(0, page).ok());
    ASSERT_TRUE(file.Sync().ok());
  }
  auto reopened = PagedFile::Open(Path("c.dat"), false);
  ASSERT_TRUE(reopened.ok());
  std::vector<std::byte> read(PagedFile::kPageSize);
  ASSERT_TRUE(reopened->ReadPage(0, read).ok());
  EXPECT_EQ(read[100], std::byte{0x5A});
}

TEST_F(StorageTest, BufferManagerReadWriteAcrossPageBoundary) {
  auto file_or = PagedFile::Create(Path("d.dat"));
  ASSERT_TRUE(file_or.ok());
  PagedFile file = std::move(file_or).value();
  BufferManager pool(&file, 4);
  // A record straddling the page boundary.
  std::vector<std::uint32_t> record(64);
  for (std::size_t i = 0; i < record.size(); ++i) {
    record[i] = static_cast<std::uint32_t>(i * 7 + 1);
  }
  const std::uint64_t offset = PagedFile::kPageSize - 100;
  ASSERT_TRUE(pool.Write(offset, record.data(),
                         record.size() * sizeof(std::uint32_t)).ok());
  std::vector<std::uint32_t> read(64);
  ASSERT_TRUE(pool.Read(offset, read.data(),
                        read.size() * sizeof(std::uint32_t)).ok());
  EXPECT_EQ(read, record);
}

TEST_F(StorageTest, BufferManagerEvictsAndWritesBack) {
  auto file_or = PagedFile::Create(Path("e.dat"));
  ASSERT_TRUE(file_or.ok());
  PagedFile file = std::move(file_or).value();
  BufferManager pool(&file, 2);  // Tiny pool: constant eviction.
  const int kPages = 10;
  for (int p = 0; p < kPages; ++p) {
    const std::uint64_t marker = 0xABCD0000u + static_cast<std::uint64_t>(p);
    ASSERT_TRUE(pool.Write(static_cast<std::uint64_t>(p) *
                               PagedFile::kPageSize,
                           &marker, sizeof(marker)).ok());
  }
  EXPECT_GT(pool.stats().evictions, 0u);
  EXPECT_GT(pool.stats().writebacks, 0u);
  ASSERT_TRUE(pool.Flush().ok());
  // Everything must be readable back (through fresh pool).
  BufferManager pool2(&file, 2);
  for (int p = 0; p < kPages; ++p) {
    std::uint64_t marker = 0;
    ASSERT_TRUE(pool2.Read(static_cast<std::uint64_t>(p) *
                               PagedFile::kPageSize,
                           &marker, sizeof(marker)).ok());
    EXPECT_EQ(marker, 0xABCD0000u + static_cast<std::uint64_t>(p));
  }
}

TEST_F(StorageTest, BufferManagerLruKeepsHotPage) {
  auto file_or = PagedFile::Create(Path("f.dat"));
  ASSERT_TRUE(file_or.ok());
  PagedFile file = std::move(file_or).value();
  // Single shard so the hot page and the cycling pages share one LRU.
  BufferManagerOptions options;
  options.capacity_pages = 2;
  options.num_shards = 1;
  BufferManager pool(&file, options);
  std::uint32_t v = 1;
  // Touch page 0 repeatedly while cycling pages 1..5: page 0 stays hot...
  ASSERT_TRUE(pool.Write(0, &v, sizeof(v)).ok());
  for (int p = 1; p <= 5; ++p) {
    ASSERT_TRUE(pool.Write(static_cast<std::uint64_t>(p) *
                               PagedFile::kPageSize,
                           &v, sizeof(v)).ok());
    std::uint32_t out = 0;
    ASSERT_TRUE(pool.Read(0, &out, sizeof(out)).ok());
  }
  // Page 0 was re-read 5 times; at least 4 must have been hits.
  EXPECT_GE(pool.stats().hits, 4u);
}

TEST_F(StorageTest, RandomizedPoolMatchesShadowBuffer) {
  auto file_or = PagedFile::Create(Path("g.dat"));
  ASSERT_TRUE(file_or.ok());
  PagedFile file = std::move(file_or).value();
  BufferManager pool(&file, 3);
  const std::size_t kBytes = 6 * PagedFile::kPageSize;
  std::vector<std::uint8_t> shadow(kBytes, 0);
  Rng rng(321);
  for (int op = 0; op < 500; ++op) {
    const auto off = static_cast<std::uint64_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(kBytes) - 64));
    const auto n = static_cast<std::size_t>(rng.UniformInt(1, 64));
    if (rng.Coin(0.5)) {
      std::vector<std::uint8_t> data(n);
      for (auto& b : data) {
        b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
      }
      ASSERT_TRUE(pool.Write(off, data.data(), n).ok());
      std::copy(data.begin(), data.end(), shadow.begin() +
                                              static_cast<long>(off));
    } else {
      std::vector<std::uint8_t> data(n, 0xEE);
      ASSERT_TRUE(pool.Read(off, data.data(), n).ok());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(data[i], shadow[off + i]) << "offset " << (off + i);
      }
    }
  }
}

}  // namespace
}  // namespace tswarp::storage
