#include "dtw/dtw.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "dtw/base.h"

namespace tswarp::dtw {
namespace {

std::vector<Value> Seq(std::initializer_list<Value> values) {
  return std::vector<Value>(values);
}

// Paper Figure 1: S3 = <3,4,3>, S4 = <4,5,6,7,6,6> has D_tw = 12.
TEST(DtwDistanceTest, PaperFigure1) {
  const auto s3 = Seq({3, 4, 3});
  const auto s4 = Seq({4, 5, 6, 7, 6, 6});
  EXPECT_DOUBLE_EQ(DtwDistance(s3, s4), 12.0);
  // Symmetry of the unconstrained warping distance.
  EXPECT_DOUBLE_EQ(DtwDistance(s4, s3), 12.0);
}

// Paper Section 1: S1 = <20,20,21,21,20,20,23,23>, S2 = <20,21,20,23> are
// identical under time warping (every S2 element duplicated).
TEST(DtwDistanceTest, PaperIntroductionExample) {
  const auto s1 = Seq({20, 20, 21, 21, 20, 20, 23, 23});
  const auto s2 = Seq({20, 21, 20, 23});
  EXPECT_DOUBLE_EQ(DtwDistance(s1, s2), 0.0);
}

TEST(DtwDistanceTest, SingleElements) {
  const auto a = Seq({3.5});
  const auto b = Seq({1.0});
  EXPECT_DOUBLE_EQ(DtwDistance(a, b), 2.5);
  EXPECT_DOUBLE_EQ(DtwDistance(a, a), 0.0);
}

TEST(DtwDistanceTest, IdenticalSequencesHaveZeroDistance) {
  const auto a = Seq({1, 2, 3, 4, 5, 4, 3, 2, 1});
  EXPECT_DOUBLE_EQ(DtwDistance(a, a), 0.0);
}

TEST(DtwDistanceTest, StretchingIsFree) {
  // Duplicating elements must not change the distance to the original.
  const auto a = Seq({1, 5, 2});
  const auto stretched = Seq({1, 1, 1, 5, 5, 2, 2, 2, 2});
  EXPECT_DOUBLE_EQ(DtwDistance(a, stretched), 0.0);
}

TEST(DtwDistanceTest, OneAgainstConstant) {
  // Query <0> vs <c,c,c>: every element maps onto the single query element.
  const auto q = Seq({0});
  const auto c = Seq({2, 2, 2});
  EXPECT_DOUBLE_EQ(DtwDistance(q, c), 6.0);
}

TEST(DtwWithinThresholdTest, AcceptsAndRejects) {
  const auto s3 = Seq({3, 4, 3});
  const auto s4 = Seq({4, 5, 6, 7, 6, 6});
  Value d = -1.0;
  EXPECT_TRUE(DtwWithinThreshold(s3, s4, 12.0, &d));
  EXPECT_DOUBLE_EQ(d, 12.0);
  EXPECT_FALSE(DtwWithinThreshold(s3, s4, 11.99, &d));
}

TEST(DtwWithinThresholdTest, MatchesFullComputationOnRandomPairs) {
  Rng rng(123);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Value> a, b;
    const int la = static_cast<int>(rng.UniformInt(1, 12));
    const int lb = static_cast<int>(rng.UniformInt(1, 12));
    for (int i = 0; i < la; ++i) a.push_back(rng.Uniform(0, 10));
    for (int i = 0; i < lb; ++i) b.push_back(rng.Uniform(0, 10));
    const Value exact = DtwDistance(a, b);
    const Value eps = rng.Uniform(0, 30);
    Value d = -1.0;
    const bool within = DtwWithinThreshold(a, b, eps, &d);
    EXPECT_EQ(within, exact <= eps) << "exact=" << exact << " eps=" << eps;
    if (within) {
      EXPECT_DOUBLE_EQ(d, exact);
    }
  }
}

TEST(DtwBandedTest, WideBandEqualsUnconstrained) {
  const auto s3 = Seq({3, 4, 3});
  const auto s4 = Seq({4, 5, 6, 7, 6, 6});
  EXPECT_DOUBLE_EQ(DtwDistanceBanded(s3, s4, 100), DtwDistance(s3, s4));
}

TEST(DtwBandedTest, BandZeroIsDiagonalAlignment) {
  const auto a = Seq({1, 2, 3});
  const auto b = Seq({2, 2, 5});
  EXPECT_DOUBLE_EQ(DtwDistanceBanded(a, b, 0), 1.0 + 0.0 + 2.0);
  const auto c = Seq({1, 2});
  EXPECT_EQ(DtwDistanceBanded(a, c, 0), kInfinity);
}

TEST(DtwBandedTest, BandIsMonotoneInWidth) {
  Rng rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<Value> a, b;
    const int la = static_cast<int>(rng.UniformInt(2, 10));
    const int lb = static_cast<int>(rng.UniformInt(2, 10));
    for (int i = 0; i < la; ++i) a.push_back(rng.Uniform(0, 5));
    for (int i = 0; i < lb; ++i) b.push_back(rng.Uniform(0, 5));
    Value prev = kInfinity;
    for (Pos band = 1; band <= 12; ++band) {
      const Value d = DtwDistanceBanded(a, b, band);
      EXPECT_LE(d, prev) << "banded DTW must not grow with wider bands";
      prev = d;
    }
    // A band of max(|a|,|b|) is unconstrained.
    EXPECT_DOUBLE_EQ(DtwDistanceBanded(a, b, 12), DtwDistance(a, b));
  }
}

TEST(BaseDistanceLbTest, InsideAndOutsideInterval) {
  EXPECT_DOUBLE_EQ(BaseDistanceLb(5.0, 4.0, 6.0), 0.0);
  EXPECT_DOUBLE_EQ(BaseDistanceLb(4.0, 4.0, 6.0), 0.0);
  EXPECT_DOUBLE_EQ(BaseDistanceLb(6.0, 4.0, 6.0), 0.0);
  EXPECT_DOUBLE_EQ(BaseDistanceLb(7.5, 4.0, 6.0), 1.5);
  EXPECT_DOUBLE_EQ(BaseDistanceLb(1.0, 4.0, 6.0), 3.0);
}

TEST(BaseDistanceLbTest, LowerBoundsExactBaseDistance) {
  Rng rng(5);
  for (int trial = 0; trial < 1000; ++trial) {
    const Value lo = rng.Uniform(0, 10);
    const Value hi = lo + rng.Uniform(0, 5);
    const Value b = rng.Uniform(lo, hi);  // A value inside the category.
    const Value a = rng.Uniform(-5, 15);
    EXPECT_LE(BaseDistanceLb(a, lo, hi), BaseDistance(a, b) + 1e-12);
  }
}

TEST(DtwLowerBoundTest, LowerBoundsExactDistance) {
  Rng rng(9);
  for (int trial = 0; trial < 300; ++trial) {
    const int lq = static_cast<int>(rng.UniformInt(1, 8));
    const int ls = static_cast<int>(rng.UniformInt(1, 8));
    std::vector<Value> q, s;
    std::vector<Interval> cs;
    for (int i = 0; i < lq; ++i) q.push_back(rng.Uniform(0, 10));
    for (int i = 0; i < ls; ++i) {
      const Value v = rng.Uniform(0, 10);
      s.push_back(v);
      // A category interval containing v.
      const Value pad_lo = rng.Uniform(0, 2);
      const Value pad_hi = rng.Uniform(0, 2);
      cs.push_back({v - pad_lo, v + pad_hi});
    }
    EXPECT_LE(DtwLowerBound(q, cs), DtwDistance(q, s) + 1e-9)
        << "Theorem 2: D_tw-lb <= D_tw";
  }
}

TEST(LowerBound2Test, ClampsAtZero) {
  EXPECT_DOUBLE_EQ(LowerBound2(5.0, 2, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(LowerBound2(5.0, 10, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(LowerBound2(5.0, 3, 0.0), 5.0);
}

// Theorem 3 (empirical): for sequences starting with a run of N equal
// categorized symbols, D_tw-lb2 lower-bounds D_tw-lb of the shortened
// suffix, which lower-bounds D_tw of the raw suffix.
TEST(LowerBound2Test, Theorem3HoldsOnRandomRuns) {
  Rng rng(31);
  for (int trial = 0; trial < 300; ++trial) {
    const int run = static_cast<int>(rng.UniformInt(2, 5));
    const int tail = static_cast<int>(rng.UniformInt(1, 6));
    // Category intervals: the first `run` elements share one interval.
    const Value lo0 = rng.Uniform(0, 8);
    const Value hi0 = lo0 + rng.Uniform(0.1, 2.0);
    std::vector<Value> s;
    std::vector<Interval> cs;
    for (int i = 0; i < run; ++i) {
      s.push_back(rng.Uniform(lo0, hi0));
      cs.push_back({lo0, hi0});
    }
    for (int i = 0; i < tail; ++i) {
      const Value v = rng.Uniform(0, 10);
      s.push_back(v);
      cs.push_back({v - rng.Uniform(0, 1), v + rng.Uniform(0, 1)});
    }
    const int lq = static_cast<int>(rng.UniformInt(1, 6));
    std::vector<Value> q;
    for (int i = 0; i < lq; ++i) q.push_back(rng.Uniform(0, 10));

    const Value lb_full = DtwLowerBound(q, cs);
    const Value first_lb = BaseDistanceLb(q.front(), lo0, hi0);
    for (int p = 1; p < run; ++p) {
      const std::span<const Value> s_sfx(s.data() + p, s.size() - p);
      const std::span<const Interval> cs_sfx(cs.data() + p, cs.size() - p);
      const Value lb2 = LowerBound2(lb_full, static_cast<Pos>(p), first_lb);
      EXPECT_LE(lb2, DtwLowerBound(q, cs_sfx) + 1e-9)
          << "D_tw-lb2 <= D_tw-lb on the suffix";
      EXPECT_LE(lb2, DtwDistance(q, s_sfx) + 1e-9)
          << "D_tw-lb2 <= D_tw on the suffix";
    }
  }
}


TEST(EndpointLowerBoundTest, IsAlwaysBelowExactDtw) {
  Rng rng(61);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<Value> a, b;
    const int la = static_cast<int>(rng.UniformInt(1, 10));
    const int lb = static_cast<int>(rng.UniformInt(1, 10));
    for (int i = 0; i < la; ++i) a.push_back(rng.Uniform(0, 10));
    for (int i = 0; i < lb; ++i) b.push_back(rng.Uniform(0, 10));
    EXPECT_LE(EndpointLowerBound(a, b), DtwDistance(a, b) + 1e-12)
        << "la=" << la << " lb=" << lb;
  }
}

TEST(EndpointLowerBoundTest, KnownValues) {
  const auto a = Seq({1, 5, 9});
  const auto b = Seq({2, 7, 7, 11});
  EXPECT_DOUBLE_EQ(EndpointLowerBound(a, b), 1.0 + 2.0);
  const auto single = Seq({4});
  EXPECT_DOUBLE_EQ(EndpointLowerBound(single, single), 0.0);
  const auto one = Seq({0});
  const auto two = Seq({3, 8});
  // Path (1,1)->(1,2): both endpoint cells are distinct.
  EXPECT_DOUBLE_EQ(EndpointLowerBound(one, two), 3.0 + 8.0);
  EXPECT_DOUBLE_EQ(DtwDistance(one, two), 11.0);
}

}  // namespace
}  // namespace tswarp::dtw
