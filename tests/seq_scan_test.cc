#include "core/seq_scan.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/generators.h"
#include "dtw/dtw.h"
#include "test_util.h"

namespace tswarp::core {
namespace {

/// Exhaustive oracle: DTW of every subsequence, no pruning, no sharing.
std::vector<Match> BruteForce(const seqdb::SequenceDatabase& db,
                              std::span<const Value> q, Value eps) {
  std::vector<Match> out;
  for (SeqId id = 0; id < db.size(); ++id) {
    const auto n = static_cast<Pos>(db.sequence(id).size());
    for (Pos p = 0; p < n; ++p) {
      for (Pos len = 1; len <= n - p; ++len) {
        const Value d = dtw::DtwDistance(q, db.Subsequence(id, p, len));
        if (d <= eps) out.push_back({id, p, len, d});
      }
    }
  }
  return out;
}

TEST(SeqScanTest, MatchesBruteForceOracle) {
  Rng rng(2024);
  for (int round = 0; round < 5; ++round) {
    seqdb::SequenceDatabase db;
    const int num_seqs = static_cast<int>(rng.UniformInt(1, 4));
    for (int i = 0; i < num_seqs; ++i) {
      seqdb::Sequence s;
      const int len = static_cast<int>(rng.UniformInt(1, 18));
      for (int p = 0; p < len; ++p) s.push_back(rng.Uniform(0, 10));
      db.Add(std::move(s));
    }
    for (int qi = 0; qi < 5; ++qi) {
      std::vector<Value> q;
      const int lq = static_cast<int>(rng.UniformInt(1, 6));
      for (int i = 0; i < lq; ++i) q.push_back(rng.Uniform(0, 10));
      const Value eps = rng.Uniform(0, 8);
      testutil::ExpectSameMatches(BruteForce(db, q, eps), SeqScan(db, q, eps),
                                  "round " + std::to_string(round));
    }
  }
}

TEST(SeqScanTest, PruningDoesNotChangeAnswers) {
  datagen::RandomWalkOptions options;
  options.num_sequences = 6;
  options.avg_length = 30;
  options.seed = 5;
  const seqdb::SequenceDatabase db = datagen::GenerateRandomWalks(options);
  Rng rng(6);
  for (int qi = 0; qi < 8; ++qi) {
    std::vector<Value> q;
    Value v = rng.Uniform(20, 80);
    for (int i = 0; i < 5; ++i) {
      q.push_back(v);
      v += rng.Gaussian(0, 1);
    }
    const Value eps = rng.Uniform(0, 10);
    SeqScanOptions no_prune;
    no_prune.prune = false;
    SearchStats pruned_stats, full_stats;
    const auto pruned = SeqScan(db, q, eps, {}, &pruned_stats);
    const auto full = SeqScan(db, q, eps, no_prune, &full_stats);
    testutil::ExpectSameMatches(full, pruned, "prune ablation");
    EXPECT_LE(pruned_stats.rows_pushed, full_stats.rows_pushed);
  }
}

TEST(SeqScanTest, PruningCutsWorkAtSmallEpsilon) {
  datagen::RandomWalkOptions options;
  options.num_sequences = 4;
  options.avg_length = 60;
  options.seed = 9;
  const seqdb::SequenceDatabase db = datagen::GenerateRandomWalks(options);
  const std::vector<Value> q = {1000.0, 1001.0};  // Far from all data.
  // Isolate Theorem 1 from the (even earlier) envelope cascade.
  SeqScanOptions prune_only;
  prune_only.use_lower_bound = false;
  SeqScanOptions no_prune = prune_only;
  no_prune.prune = false;
  SearchStats pruned_stats, full_stats;
  SeqScan(db, q, 0.5, prune_only, &pruned_stats);
  SeqScan(db, q, 0.5, no_prune, &full_stats);
  // Theorem 1 fires on the first row of every suffix.
  EXPECT_EQ(pruned_stats.rows_pushed, db.TotalElements());
  EXPECT_GT(full_stats.rows_pushed, 4 * pruned_stats.rows_pushed);
  // The envelope cascade cuts the same suffixes before any row is built.
  SearchStats lb_stats;
  SeqScan(db, q, 0.5, {}, &lb_stats);
  EXPECT_EQ(lb_stats.rows_pushed, 0u);
  EXPECT_EQ(lb_stats.lb_pruned, db.TotalElements());
}

TEST(SeqScanTest, ReportsDistances) {
  seqdb::SequenceDatabase db;
  db.Add({1, 2, 3});
  const std::vector<Value> q = {1, 2};
  const auto matches = SeqScan(db, q, 1.0);
  for (const Match& m : matches) {
    EXPECT_NEAR(m.distance,
                dtw::DtwDistance(q, db.Subsequence(m.seq, m.start, m.len)),
                1e-12);
    EXPECT_LE(m.distance, 1.0);
  }
  // S[0:1] = <1,2> matches exactly.
  bool exact = false;
  for (const Match& m : matches) {
    if (m.start == 0 && m.len == 2 && m.distance == 0.0) exact = true;
  }
  EXPECT_TRUE(exact);
}

TEST(SeqScanTest, BandedScanRespectsBand) {
  datagen::RandomWalkOptions options;
  options.num_sequences = 3;
  options.avg_length = 25;
  options.seed = 11;
  const seqdb::SequenceDatabase db = datagen::GenerateRandomWalks(options);
  Rng rng(12);
  std::vector<Value> q;
  Value v = rng.Uniform(20, 80);
  for (int i = 0; i < 6; ++i) {
    q.push_back(v);
    v += rng.Gaussian(0, 1);
  }
  SeqScanOptions banded;
  banded.band = 2;
  const auto matches = SeqScan(db, q, 20.0, banded);
  for (const Match& m : matches) {
    // |len - |Q|| <= band is implied by the band constraint.
    EXPECT_LE(std::abs(static_cast<int>(m.len) - static_cast<int>(q.size())),
              2);
    EXPECT_NEAR(m.distance,
                dtw::DtwDistanceBanded(
                    q, db.Subsequence(m.seq, m.start, m.len), 2),
                1e-12);
  }
}

}  // namespace
}  // namespace tswarp::core
