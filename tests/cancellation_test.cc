// Deadline / cooperative-cancellation tests: a cancelled search must
// return a *sound subset* of the full answer (every reported match exact,
// nothing fabricated — the no-false-dismissal contract holds for the
// completed work), set SearchStats::cancelled, and leave the shared
// scheduler and arenas fully reusable for the next query.

#include "common/cancellation.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/index.h"
#include "datagen/generators.h"
#include "test_util.h"

namespace tswarp::core {
namespace {

seqdb::SequenceDatabase TestDb(std::uint64_t seed = 11) {
  datagen::RandomWalkOptions options;
  options.num_sequences = 20;
  options.avg_length = 60;
  options.length_jitter = 10;
  options.seed = seed;
  return datagen::GenerateRandomWalks(options);
}

std::vector<Value> TestQuery(const seqdb::SequenceDatabase& db) {
  const std::span<const Value> sub = db.Subsequence(1, 3, 10);
  return std::vector<Value>(sub.begin(), sub.end());
}

Index BuildIndex(const seqdb::SequenceDatabase& db) {
  IndexOptions options;
  options.kind = IndexKind::kCategorized;
  options.num_categories = 12;
  auto index = Index::Build(&db, options);
  EXPECT_TRUE(index.ok()) << index.status().ToString();
  return std::move(*index);
}

/// Every partial match must appear in the full answer with the same
/// distance: the cancelled traversal may stop early but never invent or
/// corrupt a result.
void ExpectSoundSubset(const std::vector<Match>& full,
                       const std::vector<Match>& partial) {
  for (const Match& m : partial) {
    const auto it = std::find(full.begin(), full.end(), m);
    ASSERT_NE(it, full.end())
        << "cancelled search fabricated (" << m.seq << "," << m.start << ","
        << m.len << ")";
    EXPECT_NEAR(it->distance, m.distance, 1e-12);
  }
}

TEST(CancelTokenTest, FlagAndDeadlineFoldIntoOnePoll) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.Expired());  // Unarmed: no clock read, not expired.
  token.ArmDeadlineAfter(std::chrono::hours(1));
  EXPECT_FALSE(token.Expired());
  token.ArmDeadlineAfter(std::chrono::milliseconds(-1));
  EXPECT_TRUE(token.Expired());  // Past deadline fires immediately.
  EXPECT_FALSE(token.cancelled());  // ...but is not an explicit cancel.
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  token.Cancel();  // Idempotent.
  EXPECT_TRUE(token.cancelled());
}

TEST(CancellationSearchTest, PreCancelledSearchReturnsNothingAndFlags) {
  const seqdb::SequenceDatabase db = TestDb();
  const Index index = BuildIndex(db);
  const std::vector<Value> query = TestQuery(db);

  CancelToken token;
  token.Cancel();
  QueryOptions options;
  options.cancel = &token;
  SearchStats stats;
  const std::vector<Match> matches =
      index.Search(query, 8.0, options, &stats);
  EXPECT_TRUE(matches.empty());
  EXPECT_EQ(stats.cancelled, 1u);  // Serial: exactly one worker aborted.
}

TEST(CancellationSearchTest, PartialResultsAreASoundSubset) {
  const seqdb::SequenceDatabase db = TestDb(13);
  const Index index = BuildIndex(db);
  const std::vector<Value> query = TestQuery(db);
  const std::vector<Match> full = index.Search(query, 8.0);
  ASSERT_FALSE(full.empty());

  // Sweep deadlines from instantly-expired to comfortably-large. Each run
  // either completes (identical answer) or aborts (sound subset +
  // cancelled flag); both outcomes are legal at every budget, the
  // invariants are what matters.
  bool saw_cancelled = false;
  bool saw_complete = false;
  for (const auto budget :
       {std::chrono::microseconds(0), std::chrono::microseconds(200),
        std::chrono::microseconds(2000), std::chrono::microseconds(500000)}) {
    CancelToken token;
    token.ArmDeadlineAfter(budget);
    QueryOptions options;
    options.cancel = &token;
    SearchStats stats;
    const std::vector<Match> partial =
        index.Search(query, 8.0, options, &stats);
    if (stats.cancelled > 0) {
      saw_cancelled = true;
      EXPECT_LE(partial.size(), full.size());
      ExpectSoundSubset(full, partial);
    } else {
      saw_complete = true;
      testutil::ExpectSameMatches(full, partial, "uncancelled run");
    }
  }
  EXPECT_TRUE(saw_cancelled);  // The 0us budget always trips.
  EXPECT_TRUE(saw_complete);   // The 500ms budget never does (tiny db).
}

TEST(CancellationSearchTest, CancelFromAnotherThreadMidSearch) {
  const seqdb::SequenceDatabase db = TestDb(17);
  const Index index = BuildIndex(db);
  const std::vector<Value> query = TestQuery(db);
  const std::vector<Match> full = index.Search(query, 8.0);

  CancelToken token;
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::microseconds(300));
    token.Cancel();
  });
  QueryOptions options;
  options.cancel = &token;
  SearchStats stats;
  const std::vector<Match> partial =
      index.Search(query, 8.0, options, &stats);
  canceller.join();
  // Whether the cancel landed before or after completion, the result must
  // be sound.
  ExpectSoundSubset(full, partial);
  if (stats.cancelled == 0) {
    testutil::ExpectSameMatches(full, partial, "cancel landed too late");
  }
}

TEST(CancellationSearchTest, SchedulerAndArenasReusableAfterCancel) {
  const seqdb::SequenceDatabase db = TestDb(19);
  const Index index = BuildIndex(db);
  const std::vector<Value> query = TestQuery(db);
  const std::vector<Match> baseline = index.Search(query, 8.0);

  // A cancelled *parallel* search exercises the abort path on pool
  // workers (skipped prefix replay, early task exit)...
  CancelToken token;
  token.Cancel();
  QueryOptions cancelled;
  cancelled.cancel = &token;
  cancelled.num_threads = 4;
  SearchStats stats;
  const std::vector<Match> aborted =
      index.Search(query, 8.0, cancelled, &stats);
  EXPECT_GE(stats.cancelled, 1u);
  ExpectSoundSubset(baseline, aborted);

  // ...after which the same process-wide scheduler and thread-local
  // arenas must serve clean searches, serial and parallel, unperturbed.
  QueryOptions parallel;
  parallel.num_threads = 4;
  testutil::ExpectSameMatches(baseline, index.Search(query, 8.0, parallel),
                              "parallel after cancel");
  testutil::ExpectSameMatches(baseline, index.Search(query, 8.0),
                              "serial after cancel");
}

TEST(CancellationSearchTest, KnnHonoursTheToken) {
  const seqdb::SequenceDatabase db = TestDb(23);
  const Index index = BuildIndex(db);
  const std::vector<Value> query = TestQuery(db);
  const std::vector<Match> full = index.SearchKnn(query, 5);
  ASSERT_EQ(full.size(), 5u);

  CancelToken token;
  token.Cancel();
  QueryOptions options;
  options.cancel = &token;
  SearchStats stats;
  const std::vector<Match> partial =
      index.SearchKnn(query, 5, options, &stats);
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_LE(partial.size(), 5u);
  // Reported distances stay sorted (the collector's contract) even on the
  // abort path.
  for (std::size_t i = 1; i < partial.size(); ++i) {
    EXPECT_LE(partial[i - 1].distance, partial[i].distance);
  }
  // And the index still answers exactly afterwards.
  testutil::ExpectSameMatches(full, index.SearchKnn(query, 5),
                              "knn after cancel");
}

TEST(CancellationSearchTest, OneTokenCoversAWholeBatch) {
  const seqdb::SequenceDatabase db = TestDb(29);
  const Index index = BuildIndex(db);
  const std::vector<Value> query = TestQuery(db);
  const std::vector<std::vector<Value>> queries = {query, query, query};
  const std::vector<Value> epsilons = {8.0, 8.0, 8.0};

  CancelToken token;
  token.Cancel();
  QueryOptions options;
  options.cancel = &token;
  options.num_threads = 2;
  std::vector<SearchStats> stats;
  const std::vector<std::vector<Match>> results =
      index.SearchBatch(queries, epsilons, options, &stats);
  ASSERT_EQ(results.size(), 3u);
  ASSERT_EQ(stats.size(), 3u);
  const std::vector<Match> full = index.Search(query, 8.0);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(stats[i].cancelled, 1u) << "query " << i;
    ExpectSoundSubset(full, results[i]);
  }
}

}  // namespace
}  // namespace tswarp::core
