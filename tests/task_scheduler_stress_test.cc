// Randomized load tests for the work-stealing scheduler, shaped after how
// the search stack drives it: recursive fork/join from inside tasks (lazy
// branch splitting), several concurrent fork/join scopes (concurrent
// queries on the shared pool), steal-heavy skewed task chains (degenerate
// suffix trees), and scope teardown with tasks still queued. The stress
// label puts this binary in the CI TSan leg.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/task_scheduler.h"

namespace tswarp {
namespace {

/// Recursive binary fork: every task increments `count` and forks two
/// children until `depth` runs out — 2^(depth+1) - 1 increments total.
void Fork(TaskScope& scope, std::atomic<std::uint64_t>& count, int depth) {
  count.fetch_add(1, std::memory_order_relaxed);
  if (depth == 0) return;
  scope.Submit([&scope, &count, depth] { Fork(scope, count, depth - 1); });
  scope.Submit([&scope, &count, depth] { Fork(scope, count, depth - 1); });
}

TEST(TaskSchedulerStressTest, RecursiveForkJoin) {
  TaskScheduler::Get().EnsureWorkers(4);
  constexpr int kDepth = 9;
  TaskScope scope;
  std::atomic<std::uint64_t> count{0};
  scope.Submit([&scope, &count] { Fork(scope, count, kDepth); });
  scope.Wait();
  EXPECT_EQ(count.load(), (1ull << (kDepth + 1)) - 1);
  EXPECT_EQ(scope.tasks_executed(), (1ull << (kDepth + 1)) - 1);
}

TEST(TaskSchedulerStressTest, ConcurrentScopesStayIsolated) {
  TaskScheduler::Get().EnsureWorkers(4);
  constexpr int kScopes = 6;
  constexpr int kDepth = 7;
  std::vector<std::thread> threads;
  std::vector<std::atomic<std::uint64_t>> counts(kScopes);
  for (int s = 0; s < kScopes; ++s) {
    threads.emplace_back([&counts, s] {
      // Each external thread runs its own fork/join query against the
      // shared pool; per-scope counters must not bleed across scopes.
      TaskScope scope;
      scope.Submit([&scope, &counts, s] { Fork(scope, counts[s], kDepth); });
      scope.Wait();
      EXPECT_EQ(scope.tasks_executed(), (1ull << (kDepth + 1)) - 1);
    });
  }
  for (std::thread& t : threads) t.join();
  for (int s = 0; s < kScopes; ++s) {
    EXPECT_EQ(counts[s].load(), (1ull << (kDepth + 1)) - 1);
  }
}

TEST(TaskSchedulerStressTest, SkewedChainsForceStealing) {
  TaskScheduler::Get().EnsureWorkers(4);
  // A degenerate "tree": long dependent chains where each task enqueues
  // exactly one successor on its own deque. Progress then relies on every
  // chain's head being stolen or helped; four chains keep all workers
  // competing for single-task deques.
  constexpr int kChains = 4;
  constexpr int kLinks = 2000;
  TaskScope scope;
  std::atomic<std::uint64_t> sum{0};
  std::function<void(int)> link = [&](int remaining) {
    sum.fetch_add(1, std::memory_order_relaxed);
    if (remaining > 0) {
      scope.Submit([&link, remaining] { link(remaining - 1); });
    }
  };
  for (int c = 0; c < kChains; ++c) {
    scope.Submit([&link] { link(kLinks - 1); });
  }
  scope.Wait();
  EXPECT_EQ(sum.load(), static_cast<std::uint64_t>(kChains) * kLinks);
}

TEST(TaskSchedulerStressTest, TeardownDrainsQueuedTasks) {
  TaskScheduler::Get().EnsureWorkers(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> ran{0};
    {
      TaskScope scope;
      for (int i = 0; i < 64; ++i) {
        scope.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      }
      // Destructor path: the implicit Wait must drain everything before
      // the captured `ran` goes out of scope.
    }
    ASSERT_EQ(ran.load(), 64);
  }
}

TEST(TaskSchedulerStressTest, ThrowingTasksUnderLoad) {
  TaskScheduler::Get().EnsureWorkers(4);
  for (int round = 0; round < 20; ++round) {
    TaskScope scope;
    std::atomic<int> ran{0};
    for (int i = 0; i < 128; ++i) {
      if (i % 16 == 3) {
        scope.Submit([] { throw std::runtime_error("stress"); });
      } else {
        scope.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      }
    }
    EXPECT_THROW(scope.Wait(), std::runtime_error);
    EXPECT_EQ(ran.load(), 120);
  }
}

}  // namespace
}  // namespace tswarp
