// Cross-backend tests for the SIMD kernel layer (src/dtw/simd.h): every
// backend the machine can run must produce BITWISE identical results to
// the scalar backend on every kernel in the table, including the
// +infinity patterns the warping table feeds them (band fills, column-0
// sentinels, infinite carry-ins). Bitwise — not approximate — equality is
// the contract that makes match sets and stats machine-independent; see
// the canonical-dataflow note in simd.h.

#include <bit>
#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/types.h"
#include "dtw/simd.h"

namespace tswarp::dtw::simd {
namespace {

/// Bit-pattern equality: distinguishes +0/-0 and would catch a backend
/// producing a NaN with a different payload.
testing::AssertionResult BitEqual(Value a, Value b) {
  const auto ab = std::bit_cast<std::uint64_t>(a);
  const auto bb = std::bit_cast<std::uint64_t>(b);
  if (ab == bb) return testing::AssertionSuccess();
  return testing::AssertionFailure()
         << a << " (0x" << std::hex << ab << ") vs " << b << " (0x" << bb
         << ")";
}

testing::AssertionResult BitEqualRows(const std::vector<Value>& a,
                                      const std::vector<Value>& b) {
  if (a.size() != b.size()) {
    return testing::AssertionFailure()
           << "size " << a.size() << " vs " << b.size();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (auto r = BitEqual(a[i], b[i]); !r) {
      return testing::AssertionFailure() << "at " << i << ": " << r.message();
    }
  }
  return testing::AssertionSuccess();
}

/// Random values with the shapes the search actually produces: finite
/// cells, +infinity band fills, and exact ties (small-integer grid so
/// min() sees equal operands, exercising the minpd operand-order rule).
class ValueGen {
 public:
  explicit ValueGen(std::uint32_t seed) : rng_(seed) {}

  Value Finite() {
    return std::uniform_real_distribution<Value>(-50.0, 50.0)(rng_);
  }

  /// ~1/8 +infinity, ~1/4 small integer (tie-prone), else uniform.
  Value Cell() {
    const int kind = std::uniform_int_distribution<int>(0, 7)(rng_);
    if (kind == 0) return kInfinity;
    if (kind <= 2) {
      return static_cast<Value>(std::uniform_int_distribution<int>(-3, 3)(rng_));
    }
    return Finite();
  }

  std::vector<Value> Row(std::size_t n, bool allow_inf) {
    std::vector<Value> out(n);
    for (Value& v : out) v = allow_inf ? Cell() : Finite();
    return out;
  }

  std::mt19937& rng() { return rng_; }

 private:
  std::mt19937 rng_;
};

/// Runs `fn` once per non-scalar available backend with that backend
/// active, handing it the scalar result of `scalar_fn` for comparison.
/// Restores the previously active backend afterwards.
class SimdTest : public testing::Test {
 protected:
  void SetUp() override { saved_ = ActiveBackend(); }
  void TearDown() override { ASSERT_TRUE(SetBackend(saved_)); }

  template <typename Fn>
  void ForEachBackend(Fn fn) {
    for (const std::string& name : AvailableBackends()) {
      ASSERT_TRUE(SetBackend(name));
      ASSERT_STREQ(Kernels().name, name.c_str());
      fn(name);
    }
  }

  std::string saved_;
};

TEST_F(SimdTest, AvailableBackendsEndsWithScalar) {
  const std::vector<std::string> backends = AvailableBackends();
  ASSERT_FALSE(backends.empty());
  EXPECT_EQ(backends.back(), "scalar");
}

TEST_F(SimdTest, SetBackendRejectsUnknownNamesAndKeepsActive) {
  const std::string before = ActiveBackend();
  EXPECT_FALSE(SetBackend("bogus"));
  EXPECT_FALSE(SetBackend(""));
  EXPECT_STREQ(ActiveBackend(), before.c_str());
  EXPECT_TRUE(SetBackend("auto"));
  EXPECT_TRUE(SetBackend("scalar"));
  EXPECT_STREQ(ActiveBackend(), "scalar");
}

TEST_F(SimdTest, RowStepKernelsMatchScalarBitwise) {
  ASSERT_TRUE(SetBackend("scalar"));
  const KernelTable scalar = Kernels();
  ValueGen gen(20260806);
  for (std::size_t n = 0; n <= 33; ++n) {
    for (int rep = 0; rep < 8; ++rep) {
      const std::vector<Value> q = gen.Row(n, /*allow_inf=*/false);
      // prev has one extra leading cell: kernels read prev[-1].
      const std::vector<Value> prev = gen.Row(n + 1, /*allow_inf=*/true);
      const std::vector<Value> base = gen.Row(n, /*allow_inf=*/false);
      const Value v = gen.Finite();
      Value lb = gen.Finite(), ub = gen.Finite();
      if (lb > ub) std::swap(lb, ub);
      const Value left = rep % 3 == 0 ? kInfinity : gen.Cell();

      std::vector<Value> want_row(n), got_row(n);
      const Value want_value = scalar.row_step_value(
          q.data(), v, prev.data() + 1, want_row.data(), n, left);
      const std::vector<Value> want_value_row = want_row;
      const Value want_interval = scalar.row_step_interval(
          q.data(), lb, ub, prev.data() + 1, want_row.data(), n, left);
      const std::vector<Value> want_interval_row = want_row;
      const Value want_base = scalar.row_step_base(
          base.data(), prev.data() + 1, want_row.data(), n, left);
      const std::vector<Value> want_base_row = want_row;

      ForEachBackend([&](const std::string& name) {
        SCOPED_TRACE(name + " n=" + std::to_string(n));
        const KernelTable& k = Kernels();
        EXPECT_TRUE(BitEqual(want_value,
                             k.row_step_value(q.data(), v, prev.data() + 1,
                                              got_row.data(), n, left)));
        EXPECT_TRUE(BitEqualRows(want_value_row, got_row));
        EXPECT_TRUE(BitEqual(
            want_interval,
            k.row_step_interval(q.data(), lb, ub, prev.data() + 1,
                                got_row.data(), n, left)));
        EXPECT_TRUE(BitEqualRows(want_interval_row, got_row));
        EXPECT_TRUE(BitEqual(want_base,
                             k.row_step_base(base.data(), prev.data() + 1,
                                             got_row.data(), n, left)));
        EXPECT_TRUE(BitEqualRows(want_base_row, got_row));
      });
    }
  }
}

TEST_F(SimdTest, DistanceAndReductionKernelsMatchScalarBitwise) {
  ASSERT_TRUE(SetBackend("scalar"));
  const KernelTable scalar = Kernels();
  ValueGen gen(771);
  for (std::size_t n = 0; n <= 33; ++n) {
    for (int rep = 0; rep < 8; ++rep) {
      const std::vector<Value> q = gen.Row(n, /*allow_inf=*/false);
      const std::vector<Value> prev = gen.Row(n + 1, /*allow_inf=*/true);
      const std::vector<Value> cells = gen.Row(n, /*allow_inf=*/true);
      const Value v = gen.Finite();
      Value lb = gen.Finite(), ub = gen.Finite();
      if (lb > ub) std::swap(lb, ub);

      std::vector<Value> want(n), got(n);
      scalar.base_distance_row(q.data(), v, want.data(), n);
      const std::vector<Value> want_base = want;
      scalar.interval_distance_row(q.data(), lb, ub, want.data(), n);
      const std::vector<Value> want_interval = want;
      scalar.min_pair_row(prev.data() + 1, want.data(), n);
      const std::vector<Value> want_min_pair = want;
      const Value want_min = scalar.row_min(cells.data(), n);
      if (n == 0) {
        EXPECT_TRUE(BitEqual(want_min, kInfinity));
      }

      ForEachBackend([&](const std::string& name) {
        SCOPED_TRACE(name + " n=" + std::to_string(n));
        const KernelTable& k = Kernels();
        k.base_distance_row(q.data(), v, got.data(), n);
        EXPECT_TRUE(BitEqualRows(want_base, got));
        k.interval_distance_row(q.data(), lb, ub, got.data(), n);
        EXPECT_TRUE(BitEqualRows(want_interval, got));
        k.min_pair_row(prev.data() + 1, got.data(), n);
        EXPECT_TRUE(BitEqualRows(want_min_pair, got));
        EXPECT_TRUE(BitEqual(want_min, k.row_min(cells.data(), n)));
      });
    }
  }
}

TEST_F(SimdTest, LowerBoundKernelsMatchScalarBitwise) {
  ASSERT_TRUE(SetBackend("scalar"));
  const KernelTable scalar = Kernels();
  ValueGen gen(4242);
  // Lengths straddling the kLbBlock abandon boundary as well as the
  // stripe width.
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                              std::size_t{4}, std::size_t{17}, std::size_t{63},
                              std::size_t{64}, std::size_t{65},
                              std::size_t{130}}) {
    for (int rep = 0; rep < 8; ++rep) {
      const std::vector<Value> v = gen.Row(n, /*allow_inf=*/false);
      std::vector<Value> lo = gen.Row(n, /*allow_inf=*/false);
      std::vector<Value> up = lo;
      for (std::size_t i = 0; i < n; ++i) up[i] += std::abs(gen.Finite());
      Value clo = gen.Finite(), cup = gen.Finite();
      if (clo > cup) std::swap(clo, cup);
      // Small caps exercise the early abandon; infinity never abandons.
      const Value cap = rep % 3 == 0 ? kInfinity : std::abs(gen.Finite());

      std::vector<Value> want_proj(n), got_proj(n);
      const Value want_keogh =
          scalar.lb_keogh(v.data(), lo.data(), up.data(), n, cap);
      const Value want_keogh_const =
          scalar.lb_keogh_const(v.data(), clo, cup, n, cap);
      const Value want_p1 = scalar.lb_improved_pass1(
          v.data(), lo.data(), up.data(), want_proj.data(), n);
      const std::vector<Value> want_p1_proj = want_proj;
      const Value want_p1_const = scalar.lb_improved_pass1_const(
          v.data(), clo, cup, want_proj.data(), n);
      const std::vector<Value> want_p1c_proj = want_proj;

      ForEachBackend([&](const std::string& name) {
        SCOPED_TRACE(name + " n=" + std::to_string(n));
        const KernelTable& k = Kernels();
        EXPECT_TRUE(BitEqual(
            want_keogh, k.lb_keogh(v.data(), lo.data(), up.data(), n, cap)));
        EXPECT_TRUE(BitEqual(want_keogh_const,
                             k.lb_keogh_const(v.data(), clo, cup, n, cap)));
        EXPECT_TRUE(
            BitEqual(want_p1, k.lb_improved_pass1(v.data(), lo.data(),
                                                  up.data(), got_proj.data(),
                                                  n)));
        EXPECT_TRUE(BitEqualRows(want_p1_proj, got_proj));
        EXPECT_TRUE(BitEqual(want_p1_const,
                             k.lb_improved_pass1_const(
                                 v.data(), clo, cup, got_proj.data(), n)));
        EXPECT_TRUE(BitEqualRows(want_p1c_proj, got_proj));
      });
    }
  }
}

TEST_F(SimdTest, BandedExtremaMatchesNaiveWindowAndScalarBitwise) {
  ASSERT_TRUE(SetBackend("scalar"));
  const KernelTable scalar = Kernels();
  ValueGen gen(6174);
  for (const std::size_t band :
       {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{5},
        std::size_t{9}}) {
    for (std::size_t n = 1; n <= 40; ++n) {
      const std::vector<Value> seq = gen.Row(n, /*allow_inf=*/true);
      const std::size_t reach = n + band;
      std::vector<Value> want_lo(reach), want_up(reach);
      std::vector<Value> got_lo(reach), got_up(reach);
      std::vector<Value> work(2 * (n + 3 * band));
      scalar.banded_extrema(seq.data(), n, band, want_lo.data(),
                            want_up.data(), work.data());
      // The outputs are selections of input values, so the naive window
      // scan must agree exactly, ties included (the fuzz never produces
      // distinct tied bit patterns such as +0 vs -0).
      for (std::size_t j = 0; j < reach; ++j) {
        const std::size_t lo = j > band ? j - band : 0;
        const std::size_t hi = std::min(j + band, n - 1);
        Value mn = kInfinity, mx = -kInfinity;
        for (std::size_t i = lo; i <= hi; ++i) {
          mn = seq[i] < mn ? seq[i] : mn;
          mx = seq[i] > mx ? seq[i] : mx;
        }
        SCOPED_TRACE("band=" + std::to_string(band) +
                     " n=" + std::to_string(n) + " j=" + std::to_string(j));
        EXPECT_TRUE(BitEqual(mn, want_lo[j]));
        EXPECT_TRUE(BitEqual(mx, want_up[j]));
      }
      ForEachBackend([&](const std::string& name) {
        SCOPED_TRACE(name + " band=" + std::to_string(band) +
                     " n=" + std::to_string(n));
        Kernels().banded_extrema(seq.data(), n, band, got_lo.data(),
                                 got_up.data(), work.data());
        EXPECT_TRUE(BitEqualRows(want_lo, got_lo));
        EXPECT_TRUE(BitEqualRows(want_up, got_up));
      });
    }
  }
}

TEST_F(SimdTest, StridedGatherMatchesScalarBitwise) {
  ASSERT_TRUE(SetBackend("scalar"));
  const KernelTable scalar = Kernels();
  ValueGen gen(99);
  for (const std::size_t stride : {std::size_t{1}, std::size_t{2},
                                   std::size_t{3}, std::size_t{7}}) {
    for (std::size_t n = 0; n <= 33; ++n) {
      const std::vector<Value> src =
          gen.Row(n * stride + 1, /*allow_inf=*/true);
      std::vector<Value> want(n), got(n);
      scalar.strided_gather(src.data(), stride, want.data(), n);
      ForEachBackend([&](const std::string& name) {
        SCOPED_TRACE(name + " stride=" + std::to_string(stride) +
                     " n=" + std::to_string(n));
        Kernels().strided_gather(src.data(), stride, got.data(), n);
        EXPECT_TRUE(BitEqualRows(want, got));
      });
    }
  }
}

}  // namespace
}  // namespace tswarp::dtw::simd
