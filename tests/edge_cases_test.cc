// Boundary conditions across the whole stack: single-element sequences and
// queries, epsilon 0, identical sequences, extreme categorization, and
// degenerate databases.

#include <vector>

#include <gtest/gtest.h>

#include "core/index.h"
#include "core/seq_scan.h"
#include "dtw/dtw.h"
#include "test_util.h"

namespace tswarp::core {
namespace {

TEST(EdgeCaseTest, SingleElementDatabaseAndQuery) {
  seqdb::SequenceDatabase db;
  db.Add({5.0});
  for (IndexKind kind : {IndexKind::kSuffixTree, IndexKind::kCategorized,
                         IndexKind::kSparse}) {
    IndexOptions options;
    options.kind = kind;
    options.num_categories = 4;
    auto index = Index::Build(&db, options);
    if (!index.ok()) {
      // Categorized builds legitimately fail on a degenerate value range
      // (one distinct value cannot form two category boundaries).
      EXPECT_NE(kind, IndexKind::kSuffixTree);
      continue;
    }
    const std::vector<Value> q = {5.0};
    const auto matches = index->Search(q, 0.0);
    ASSERT_EQ(matches.size(), 1u) << IndexKindToString(kind);
    EXPECT_EQ(matches[0].seq, 0u);
    EXPECT_EQ(matches[0].len, 1u);
    EXPECT_DOUBLE_EQ(matches[0].distance, 0.0);
    const std::vector<Value> far = {99.0};
    EXPECT_TRUE(index->Search(far, 1.0).empty());
  }
}

TEST(EdgeCaseTest, TwoDistinctValuesSuffice) {
  seqdb::SequenceDatabase db;
  db.Add({1.0, 2.0, 1.0, 2.0, 2.0});
  for (IndexKind kind : {IndexKind::kSuffixTree, IndexKind::kCategorized,
                         IndexKind::kSparse}) {
    IndexOptions options;
    options.kind = kind;
    options.num_categories = 2;
    auto index = Index::Build(&db, options);
    ASSERT_TRUE(index.ok()) << IndexKindToString(kind);
    const std::vector<Value> q = {1.0, 2.0};
    testutil::ExpectSameMatches(SeqScan(db, q, 0.5),
                                index->Search(q, 0.5),
                                IndexKindToString(kind));
  }
}

TEST(EdgeCaseTest, QueryLongerThanEverySequence) {
  seqdb::SequenceDatabase db;
  db.Add({3, 4});
  db.Add({5});
  IndexOptions options;
  options.kind = IndexKind::kSparse;
  options.num_categories = 2;
  auto index = Index::Build(&db, options);
  ASSERT_TRUE(index.ok());
  // Query of length 6: warping can still match shorter subsequences.
  const std::vector<Value> q = {3, 3, 3, 4, 4, 4};
  testutil::ExpectSameMatches(SeqScan(db, q, 0.5), index->Search(q, 0.5),
                              "long query");
  // The whole S0 matches at distance 0 (elements repeated).
  const auto matches = index->Search(q, 0.0);
  bool whole = false;
  for (const auto& m : matches) {
    if (m.seq == 0 && m.start == 0 && m.len == 2) whole = true;
  }
  EXPECT_TRUE(whole);
}

TEST(EdgeCaseTest, ManyIdenticalSequences) {
  seqdb::SequenceDatabase db;
  for (int i = 0; i < 20; ++i) db.Add({7, 8, 9, 8, 7});
  IndexOptions options;
  options.kind = IndexKind::kSparse;
  options.num_categories = 3;
  auto index = Index::Build(&db, options);
  ASSERT_TRUE(index.ok());
  const std::vector<Value> q = {8, 9, 8};
  const auto matches = index->Search(q, 0.0);
  // Every copy contributes the same zero-distance windows.
  std::vector<int> per_seq(20, 0);
  for (const auto& m : matches) ++per_seq[m.seq];
  for (int i = 1; i < 20; ++i) {
    EXPECT_EQ(per_seq[i], per_seq[0]) << "sequence " << i;
  }
  EXPECT_GT(per_seq[0], 0);
  testutil::ExpectSameMatches(SeqScan(db, q, 0.0), matches, "identical");
}

TEST(EdgeCaseTest, NegativeValuesWork) {
  seqdb::SequenceDatabase db;
  db.Add({-10.5, -3.25, 0.0, 4.5, -8.0});
  db.Add({-3.0, -3.5, -2.75});
  for (IndexKind kind : {IndexKind::kSuffixTree, IndexKind::kCategorized,
                         IndexKind::kSparse}) {
    IndexOptions options;
    options.kind = kind;
    options.num_categories = 3;
    auto index = Index::Build(&db, options);
    ASSERT_TRUE(index.ok());
    const std::vector<Value> q = {-3.25, -3.0};
    testutil::ExpectSameMatches(SeqScan(db, q, 1.0), index->Search(q, 1.0),
                                IndexKindToString(kind));
  }
}

TEST(EdgeCaseTest, HugeEpsilonReturnsAllSubsequences) {
  seqdb::SequenceDatabase db;
  db.Add({1, 2, 3, 4});
  db.Add({5, 6});
  IndexOptions options;
  options.kind = IndexKind::kSparse;
  options.num_categories = 2;
  auto index = Index::Build(&db, options);
  ASSERT_TRUE(index.ok());
  const std::vector<Value> q = {3.0};
  const auto matches = index->Search(q, 1e9);
  // 4+3+2+1 subsequences in S0, 2+1 in S1.
  EXPECT_EQ(matches.size(), 10u + 3u);
}

TEST(EdgeCaseTest, OneCategoryStillExact) {
  // A single category makes every lower-bound row 0 inside the value
  // range: the filter admits everything and post-processing does all the
  // work — slow but still exact.
  seqdb::SequenceDatabase db;
  db.Add({1, 5, 2, 8, 3});
  db.Add({4, 4, 6});
  IndexOptions options;
  options.kind = IndexKind::kSparse;
  options.num_categories = 1;
  auto index = Index::Build(&db, options);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->build_info().num_categories, 1u);
  const std::vector<Value> q = {5, 2};
  testutil::ExpectSameMatches(SeqScan(db, q, 2.0), index->Search(q, 2.0),
                              "one category");
}

TEST(EdgeCaseTest, MatchDistancesNeverExceedEpsilon) {
  seqdb::SequenceDatabase db;
  db.Add({10, 12, 11, 14, 13, 12, 15});
  IndexOptions options;
  options.kind = IndexKind::kSparse;
  options.num_categories = 4;
  auto index = Index::Build(&db, options);
  ASSERT_TRUE(index.ok());
  const std::vector<Value> q = {11, 13};
  for (const Value eps : {0.0, 0.5, 2.0, 10.0}) {
    for (const Match& m : index->Search(q, eps)) {
      EXPECT_LE(m.distance, eps);
      EXPECT_NEAR(m.distance,
                  dtw::DtwDistance(q, db.Subsequence(m.seq, m.start,
                                                     m.len)),
                  1e-12);
    }
  }
}

}  // namespace
}  // namespace tswarp::core
