// Streaming stress suite — the TSan CI leg's coverage of the tiered
// index's concurrency contract: appends, background compactions,
// snapshot-pinned searches, and continuous-query delivery all racing.
// Functional assertions are deliberately loose (monotonic counters,
// exactly-once sets); the point is that TSan sees every cross-thread
// edge: Append publishing while searchers take snapshots, the merge
// worker retiring tiers out from under pinned readers, and callbacks
// firing while Unregister runs.

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/index.h"
#include "core/tiered_index.h"
#include "seqdb/sequence_database.h"

namespace tswarp {
namespace {

using core::IndexKind;
using core::Match;
using core::TieredIndex;
using core::TieredOptions;

seqdb::Sequence RandomSeq(Rng* rng, std::size_t n) {
  seqdb::Sequence v;
  v.reserve(n);
  Value x = rng->Uniform(-10, 10);
  for (std::size_t i = 0; i < n; ++i) {
    x += rng->Gaussian(0, 1);
    v.push_back(x);
  }
  return v;
}

seqdb::SequenceDatabase BaseDb(int sequences, std::uint64_t seed) {
  Rng rng(seed);
  seqdb::SequenceDatabase db;
  for (int i = 0; i < sequences; ++i) {
    db.Add(RandomSeq(&rng, static_cast<std::size_t>(rng.UniformInt(8, 20))));
  }
  return db;
}

TEST(StreamingStressTest, AppendAndMergeWhileSearching) {
  constexpr int kAppends = 48;
  constexpr int kSearchers = 3;
  const seqdb::SequenceDatabase db = BaseDb(8, 101);

  TieredOptions options;
  options.index.kind = IndexKind::kCategorized;
  options.index.num_categories = 8;
  options.memtable_max_sequences = 2;
  options.max_sealed_tiers = 2;
  options.merge_in_background = true;
  auto tiered = TieredIndex::Create(&db, options);
  ASSERT_TRUE(tiered.ok()) << tiered.status().ToString();

  Rng qrng(202);
  const std::vector<Value> q = RandomSeq(&qrng, 6);

  std::atomic<bool> done{false};
  std::atomic<int> searches{0};
  std::vector<std::thread> searchers;
  for (int s = 0; s < kSearchers; ++s) {
    searchers.emplace_back([&, s] {
      std::size_t last_total = 0;
      core::QueryOptions qo;
      qo.num_threads = static_cast<std::size_t>(s);  // Serial and parallel.
      while (!done.load(std::memory_order_relaxed)) {
        const auto snapshot = (*tiered)->Snapshot();
        // Published sequence counts only ever grow.
        ASSERT_GE(snapshot->total_sequences(), last_total);
        last_total = snapshot->total_sequences();
        const std::vector<Match> matches = snapshot->Search(q, 4.0, qo);
        for (const Match& m : matches) {
          ASSERT_LT(m.seq, snapshot->total_sequences());
        }
        snapshot->SearchKnn(q, 5, qo);
        searches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  Rng arng(303);
  for (int i = 0; i < kAppends; ++i) {
    auto id = (*tiered)->Append(RandomSeq(&arng, 12));
    ASSERT_TRUE(id.ok());
    ASSERT_EQ(*id, db.size() + static_cast<SeqId>(i));
  }
  (*tiered)->WaitForMerges();
  done.store(true, std::memory_order_relaxed);
  for (std::thread& t : searchers) t.join();

  EXPECT_GT(searches.load(), 0);
  const core::TieredStats stats = (*tiered)->Stats();
  EXPECT_EQ(stats.appended_sequences, static_cast<std::size_t>(kAppends));
  EXPECT_EQ((*tiered)->Snapshot()->total_sequences(), db.size() + kAppends);
  EXPECT_GE(stats.merges_completed, 1u);
}

TEST(StreamingStressTest, ContinuousDeliveryExactlyOnceUnderLoad) {
  constexpr int kAppends = 40;
  const seqdb::SequenceDatabase db = BaseDb(6, 404);

  TieredOptions options;
  options.index.kind = IndexKind::kSparse;
  options.index.num_categories = 8;
  options.memtable_max_sequences = 2;
  options.max_sealed_tiers = 1;
  options.merge_in_background = true;
  auto tiered = TieredIndex::Create(&db, options);
  ASSERT_TRUE(tiered.ok());

  Rng qrng(505);
  const std::vector<Value> q = RandomSeq(&qrng, 5);
  const Value eps = 6.0;

  std::mutex mu;
  std::set<std::tuple<SeqId, Pos, Pos>> seen;
  std::atomic<bool> duplicate{false};
  (*tiered)->RegisterContinuous(
      q, eps, [&](std::uint64_t, const std::vector<Match>& matches) {
        std::lock_guard<std::mutex> lock(mu);
        for (const Match& m : matches) {
          if (!seen.insert({m.seq, m.start, m.len}).second) {
            duplicate.store(true, std::memory_order_relaxed);
          }
        }
      });

  // Searchers hammer snapshots while appends fire the callback and the
  // merge worker compacts the sealed tiers the callback's matches came
  // from — deliveries must still be exactly-once.
  std::atomic<bool> done{false};
  std::thread searcher([&] {
    while (!done.load(std::memory_order_relaxed)) {
      (*tiered)->Snapshot()->Search(q, eps);
    }
  });

  Rng arng(606);
  for (int i = 0; i < kAppends; ++i) {
    ASSERT_TRUE((*tiered)->Append(RandomSeq(&arng, 14)).ok());
  }
  (*tiered)->WaitForMerges();
  done.store(true, std::memory_order_relaxed);
  searcher.join();

  EXPECT_FALSE(duplicate.load()) << "continuous match delivered twice";
  // Ground truth: everything a search now finds in appended sequences was
  // delivered, and nothing else was.
  const std::vector<Match> full = (*tiered)->Snapshot()->Search(q, eps);
  std::set<std::tuple<SeqId, Pos, Pos>> expected;
  for (const Match& m : full) {
    if (m.seq >= db.size()) expected.insert({m.seq, m.start, m.len});
  }
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(expected, seen);
}

TEST(StreamingStressTest, SnapshotOutlivesMergedAwayTiers) {
  // Pin snapshots across compactions, then search them after their tiers
  // were merged away — use-after-free of retired tiers is the TSan/ASan
  // target here.
  const seqdb::SequenceDatabase db = BaseDb(5, 707);
  TieredOptions options;
  options.index.kind = IndexKind::kCategorized;
  options.index.num_categories = 8;
  options.memtable_max_sequences = 1;
  options.max_sealed_tiers = 1;
  options.merge_in_background = false;
  auto tiered = TieredIndex::Create(&db, options);
  ASSERT_TRUE(tiered.ok());

  Rng rng(808);
  const std::vector<Value> q = RandomSeq(&rng, 6);
  std::vector<std::shared_ptr<const core::IndexSnapshot>> pinned;
  std::vector<std::vector<Match>> pinned_matches;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE((*tiered)->Append(RandomSeq(&rng, 12)).ok());
    pinned.push_back((*tiered)->Snapshot());
    pinned_matches.push_back(pinned.back()->Search(q, 4.0));
  }
  // Every pinned snapshot still answers identically, even though the
  // current stack has compacted its tiers away.
  for (std::size_t i = 0; i < pinned.size(); ++i) {
    const std::vector<Match> again = pinned[i]->Search(q, 4.0);
    ASSERT_EQ(again.size(), pinned_matches[i].size()) << "snapshot " << i;
    for (std::size_t j = 0; j < again.size(); ++j) {
      ASSERT_EQ(again[j].seq, pinned_matches[i][j].seq);
      ASSERT_EQ(again[j].distance, pinned_matches[i][j].distance);
    }
  }
}

}  // namespace
}  // namespace tswarp
