#include "suffixtree/merge.h"

#include <algorithm>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "suffixtree/suffix_tree.h"
#include "suffixtree/symbol_database.h"

namespace tswarp::suffixtree {
namespace {

/// Canonical form of a tree: sorted (path-label, occurrence) pairs. Two
/// suffix trees over the same suffix set are equal iff their canonical
/// forms match (node layout may differ in child order only).
using Canon =
    std::vector<std::pair<std::vector<Symbol>, std::tuple<SeqId, Pos, Pos>>>;

Canon Canonicalize(const TreeView& view) {
  Canon out;
  struct Frame {
    NodeId node;
    std::vector<Symbol> path;
  };
  std::vector<Frame> stack = {{view.Root(), {}}};
  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    std::vector<OccurrenceRec> occs;
    view.GetOccurrences(f.node, &occs);
    for (const OccurrenceRec& o : occs) {
      out.emplace_back(f.path, std::make_tuple(o.seq, o.pos, o.run));
    }
    Children children;
    view.GetChildren(f.node, &children);
    for (const Children::Edge& e : children.edges) {
      Frame next{e.child, f.path};
      const std::span<const Symbol> label = children.Label(e);
      next.path.insert(next.path.end(), label.begin(), label.end());
      stack.push_back(std::move(next));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

SymbolDatabase RandomSymbolDb(std::uint64_t seed, std::size_t num_seqs,
                              std::size_t max_len, Symbol alphabet) {
  Rng rng(seed);
  SymbolDatabase db;
  for (std::size_t i = 0; i < num_seqs; ++i) {
    const auto len = static_cast<std::size_t>(
        rng.UniformInt(1, static_cast<int>(max_len)));
    SymbolSequence s;
    for (std::size_t p = 0; p < len; ++p) {
      s.push_back(static_cast<Symbol>(rng.UniformInt(0, alphabet - 1)));
    }
    db.Add(std::move(s));
  }
  return db;
}

/// Builds a tree over sequences [begin, end) of `db`.
SuffixTree BuildRange(const SymbolDatabase& db, SeqId begin, SeqId end,
                      BuildOptions options = {}) {
  SuffixTreeBuilder builder(&db, options);
  for (SeqId id = begin; id < end; ++id) builder.InsertSequence(id);
  return builder.Build();
}

TEST(MergeTest, MergeOfPartitionsEqualsDirectBuild) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const SymbolDatabase db = RandomSymbolDb(seed, 8, 25, 3);
    const SuffixTree whole = BuildRange(db, 0, 8);
    const SuffixTree left = BuildRange(db, 0, 4);
    const SuffixTree right = BuildRange(db, 4, 8);
    SuffixTree merged;
    MergeTrees(left, right, &merged);
    EXPECT_EQ(Canonicalize(merged), Canonicalize(whole)) << "seed " << seed;
    // The merged tree must be minimal: same node count as direct build.
    EXPECT_EQ(merged.NumNodes(), whole.NumNodes()) << "seed " << seed;
    EXPECT_EQ(merged.NumOccurrences(), whole.NumOccurrences());
  }
}

TEST(MergeTest, SparseTreesMergeCorrectly) {
  BuildOptions options;
  options.sparse = true;
  for (std::uint64_t seed = 20; seed <= 26; ++seed) {
    const SymbolDatabase db = RandomSymbolDb(seed, 6, 30, 2);
    const SuffixTree whole = BuildRange(db, 0, 6, options);
    const SuffixTree left = BuildRange(db, 0, 3, options);
    const SuffixTree right = BuildRange(db, 3, 6, options);
    SuffixTree merged;
    MergeTrees(left, right, &merged);
    EXPECT_EQ(Canonicalize(merged), Canonicalize(whole)) << "seed " << seed;
  }
}

TEST(MergeTest, MergeWithSingleSequenceTree) {
  const SymbolDatabase db = RandomSymbolDb(5, 2, 20, 3);
  const SuffixTree whole = BuildRange(db, 0, 2);
  const SuffixTree a = BuildRange(db, 0, 1);
  const SuffixTree b = BuildRange(db, 1, 2);
  SuffixTree merged;
  MergeTrees(a, b, &merged);
  EXPECT_EQ(Canonicalize(merged), Canonicalize(whole));
}

TEST(MergeTest, MergeIsCommutativeUpToCanonicalForm) {
  const SymbolDatabase db = RandomSymbolDb(9, 6, 20, 3);
  const SuffixTree a = BuildRange(db, 0, 3);
  const SuffixTree b = BuildRange(db, 3, 6);
  SuffixTree ab, ba;
  MergeTrees(a, b, &ab);
  MergeTrees(b, a, &ba);
  EXPECT_EQ(Canonicalize(ab), Canonicalize(ba));
}

TEST(MergeTest, CascadedBinaryMerges) {
  // The paper's construction: a series of binary merges of trees of
  // increasing size.
  const SymbolDatabase db = RandomSymbolDb(11, 8, 15, 3);
  const SuffixTree whole = BuildRange(db, 0, 8);
  std::vector<SuffixTree> trees;
  for (SeqId id = 0; id < 8; ++id) {
    trees.push_back(BuildRange(db, id, id + 1));
  }
  std::size_t head = 0;
  while (trees.size() - head > 1) {
    SuffixTree merged;
    MergeTrees(trees[head], trees[head + 1], &merged);
    head += 2;
    trees.push_back(std::move(merged));
  }
  EXPECT_EQ(Canonicalize(trees[head]), Canonicalize(whole));
  EXPECT_EQ(trees[head].NumNodes(), whole.NumNodes());
}

TEST(CopyTreeTest, CopyIsIdentityOnCanonicalForm) {
  const SymbolDatabase db = RandomSymbolDb(13, 6, 25, 4);
  const SuffixTree tree = BuildRange(db, 0, 6);
  SuffixTree copy;
  CopyTree(tree, &copy);
  EXPECT_EQ(Canonicalize(copy), Canonicalize(tree));
  EXPECT_EQ(copy.NumNodes(), tree.NumNodes());
  EXPECT_EQ(copy.NumOccurrences(), tree.NumOccurrences());
  EXPECT_EQ(copy.NumLabelSymbols(), tree.NumLabelSymbols());
}

TEST(MergeTest, DisjointAlphabetsConcatenateUnderRoot) {
  SymbolDatabase db;
  db.Add({0, 1, 0});
  db.Add({5, 6, 5});
  const SuffixTree whole = BuildRange(db, 0, 2);
  const SuffixTree a = BuildRange(db, 0, 1);
  const SuffixTree b = BuildRange(db, 1, 2);
  SuffixTree merged;
  MergeTrees(a, b, &merged);
  EXPECT_EQ(Canonicalize(merged), Canonicalize(whole));
  // No shared paths: merged size is the sum of parts (minus one root).
  EXPECT_EQ(merged.NumNodes(), a.NumNodes() + b.NumNodes() - 1);
}

}  // namespace
}  // namespace tswarp::suffixtree
