#include "dtw/alignment.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "dtw/base.h"
#include "dtw/dtw.h"

namespace tswarp::dtw {
namespace {

/// Properties every legal warping path must satisfy (paper Section 3).
void CheckPathProperties(const std::vector<Value>& a,
                         const std::vector<Value>& b,
                         const Alignment& alignment) {
  ASSERT_FALSE(alignment.path.empty());
  // Endpoints.
  EXPECT_EQ(alignment.path.front(), (AlignmentStep{0, 0}));
  EXPECT_EQ(alignment.path.back(),
            (AlignmentStep{static_cast<Pos>(a.size() - 1),
                           static_cast<Pos>(b.size() - 1)}));
  // Monotone continuous steps.
  for (std::size_t i = 1; i < alignment.path.size(); ++i) {
    const auto& prev = alignment.path[i - 1];
    const auto& cur = alignment.path[i];
    const int dx = static_cast<int>(cur.a_index) -
                   static_cast<int>(prev.a_index);
    const int dy = static_cast<int>(cur.b_index) -
                   static_cast<int>(prev.b_index);
    EXPECT_TRUE((dx == 0 || dx == 1) && (dy == 0 || dy == 1) &&
                (dx + dy >= 1))
        << "illegal step at " << i;
  }
  // Path cost equals the reported distance.
  Value total = 0.0;
  for (const AlignmentStep& s : alignment.path) {
    total += BaseDistance(a[s.a_index], b[s.b_index]);
  }
  EXPECT_NEAR(total, alignment.distance, 1e-9);
  // And the reported distance is the DTW distance.
  EXPECT_NEAR(alignment.distance, DtwDistance(a, b), 1e-9);
}

TEST(AlignmentTest, PaperFigure1) {
  const std::vector<Value> s3 = {3, 4, 3};
  const std::vector<Value> s4 = {4, 5, 6, 7, 6, 6};
  const Alignment alignment = DtwAlign(s3, s4);
  EXPECT_DOUBLE_EQ(alignment.distance, 12.0);
  CheckPathProperties(s3, s4, alignment);
}

TEST(AlignmentTest, IdenticalSequencesAlignDiagonally) {
  const std::vector<Value> a = {1, 3, 2, 5};
  const Alignment alignment = DtwAlign(a, a);
  EXPECT_DOUBLE_EQ(alignment.distance, 0.0);
  ASSERT_EQ(alignment.path.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(alignment.path[i],
              (AlignmentStep{static_cast<Pos>(i), static_cast<Pos>(i)}));
  }
}

TEST(AlignmentTest, StretchedCopyMapsDuplicates) {
  // Paper introduction: duplicating every element of S2 yields S1.
  const std::vector<Value> s1 = {20, 20, 21, 21, 20, 20, 23, 23};
  const std::vector<Value> s2 = {20, 21, 20, 23};
  const Alignment alignment = DtwAlign(s2, s1);
  EXPECT_DOUBLE_EQ(alignment.distance, 0.0);
  CheckPathProperties(s2, s1, alignment);
  // Every s1 element maps to an s2 element of equal value.
  for (const AlignmentStep& s : alignment.path) {
    EXPECT_DOUBLE_EQ(s2[s.a_index], s1[s.b_index]);
  }
}

TEST(AlignmentTest, RandomPathsAreValid) {
  Rng rng(555);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Value> a, b;
    const int la = static_cast<int>(rng.UniformInt(1, 12));
    const int lb = static_cast<int>(rng.UniformInt(1, 12));
    for (int i = 0; i < la; ++i) a.push_back(rng.Uniform(0, 10));
    for (int i = 0; i < lb; ++i) b.push_back(rng.Uniform(0, 10));
    CheckPathProperties(a, b, DtwAlign(a, b));
  }
}

TEST(AlignmentTest, SingleElementPaths) {
  const std::vector<Value> a = {5};
  const std::vector<Value> b = {1, 2, 3};
  const Alignment alignment = DtwAlign(a, b);
  EXPECT_DOUBLE_EQ(alignment.distance, 4 + 3 + 2);
  ASSERT_EQ(alignment.path.size(), 3u);
  for (const AlignmentStep& s : alignment.path) {
    EXPECT_EQ(s.a_index, 0u);
  }
}

}  // namespace
}  // namespace tswarp::dtw
