#include "datagen/generators.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

namespace tswarp::datagen {
namespace {

TEST(RandomWalkTest, ShapeAndDeterminism) {
  RandomWalkOptions options;
  options.num_sequences = 30;
  options.avg_length = 50;
  options.length_jitter = 10;
  options.seed = 99;
  const seqdb::SequenceDatabase a = GenerateRandomWalks(options);
  EXPECT_EQ(a.size(), 30u);
  for (SeqId id = 0; id < a.size(); ++id) {
    EXPECT_GE(a.sequence(id).size(), 40u);
    EXPECT_LE(a.sequence(id).size(), 60u);
  }
  const seqdb::SequenceDatabase b = GenerateRandomWalks(options);
  for (SeqId id = 0; id < a.size(); ++id) {
    EXPECT_EQ(a.sequence(id), b.sequence(id)) << "same seed, same data";
  }
  options.seed = 100;
  const seqdb::SequenceDatabase c = GenerateRandomWalks(options);
  EXPECT_NE(a.sequence(0), c.sequence(0)) << "different seed, new data";
}

TEST(RandomWalkTest, StepsAreIncrements) {
  RandomWalkOptions options;
  options.num_sequences = 5;
  options.avg_length = 100;
  options.step_stddev = 1.0;
  const seqdb::SequenceDatabase db = GenerateRandomWalks(options);
  // S[p] - S[p-1] should look like N(0,1): bounded, mean near 0.
  double sum = 0.0;
  std::size_t n = 0;
  for (SeqId id = 0; id < db.size(); ++id) {
    const seqdb::Sequence& s = db.sequence(id);
    for (std::size_t p = 1; p < s.size(); ++p) {
      const double z = s[p] - s[p - 1];
      EXPECT_LT(std::fabs(z), 6.0);
      sum += z;
      ++n;
    }
  }
  EXPECT_LT(std::fabs(sum / static_cast<double>(n)), 0.3);
}

TEST(StockTest, MatchesPaperShape) {
  StockOptions options;  // Defaults mirror the paper's data set.
  const seqdb::SequenceDatabase db = GenerateStocks(options);
  EXPECT_EQ(db.size(), 545u);
  EXPECT_NEAR(db.AverageLength(), 232.0, 15.0);
  // Prices stay positive.
  const auto [lo, hi] = db.ValueRange();
  EXPECT_GE(lo, options.min_price);
  EXPECT_GT(hi, lo);
  // All three price strata are populated (needed for the paper's
  // 20/50/30 query stratification).
  std::size_t low = 0, mid = 0, high = 0;
  for (SeqId id = 0; id < db.size(); ++id) {
    const Value mean = db.MeanValue(id);
    if (mean < 30.0) {
      ++low;
    } else if (mean <= 60.0) {
      ++mid;
    } else {
      ++high;
    }
  }
  EXPECT_GT(low, 30u);
  EXPECT_GT(mid, 100u);
  EXPECT_GT(high, 30u);
}

TEST(EcgTest, BeatsArePresent) {
  EcgOptions options;
  options.num_sequences = 3;
  const seqdb::SequenceDatabase db = GenerateEcg(options);
  EXPECT_EQ(db.size(), 3u);
  for (SeqId id = 0; id < db.size(); ++id) {
    const seqdb::Sequence& s = db.sequence(id);
    const auto [lo, hi] = std::minmax_element(s.begin(), s.end());
    // Pulses push well above the baseline.
    EXPECT_GT(*hi - *lo, options.pulse_amplitude * 0.5);
  }
}

TEST(QueryWorkloadTest, LengthsAndCount) {
  StockOptions stock_options;
  stock_options.num_sequences = 100;
  const seqdb::SequenceDatabase db = GenerateStocks(stock_options);
  QueryWorkloadOptions options;
  options.num_queries = 40;
  options.avg_length = 20;
  options.length_jitter = 4;
  const auto queries = ExtractQueries(db, options);
  ASSERT_EQ(queries.size(), 40u);
  double total_len = 0;
  for (const seqdb::Sequence& q : queries) {
    EXPECT_GE(q.size(), 16u);
    EXPECT_LE(q.size(), 24u);
    total_len += static_cast<double>(q.size());
  }
  EXPECT_NEAR(total_len / 40.0, 20.0, 3.0);
}

TEST(QueryWorkloadTest, QueriesAreSubsequencesOfTheDatabase) {
  StockOptions stock_options;
  stock_options.num_sequences = 20;
  stock_options.avg_length = 80;
  const seqdb::SequenceDatabase db = GenerateStocks(stock_options);
  QueryWorkloadOptions options;
  options.num_queries = 10;
  const auto queries = ExtractQueries(db, options);
  for (const seqdb::Sequence& q : queries) {
    bool found = false;
    for (SeqId id = 0; id < db.size() && !found; ++id) {
      const seqdb::Sequence& s = db.sequence(id);
      if (q.size() > s.size()) continue;
      for (std::size_t start = 0; start + q.size() <= s.size(); ++start) {
        if (std::equal(q.begin(), q.end(), s.begin() +
                                               static_cast<long>(start))) {
          found = true;
          break;
        }
      }
    }
    EXPECT_TRUE(found) << "query is not a literal subsequence";
  }
}

TEST(QueryWorkloadTest, StrataProportionsRoughlyHold) {
  StockOptions stock_options;
  const seqdb::SequenceDatabase db = GenerateStocks(stock_options);
  QueryWorkloadOptions options;
  options.num_queries = 400;
  const auto queries = ExtractQueries(db, options);
  std::size_t low = 0, mid = 0, high = 0;
  for (const seqdb::Sequence& q : queries) {
    const double mean = std::accumulate(q.begin(), q.end(), 0.0) /
                        static_cast<double>(q.size());
    if (mean < 30.0) {
      ++low;
    } else if (mean <= 60.0) {
      ++mid;
    } else {
      ++high;
    }
  }
  // Queries are drawn from sequences stratified by *sequence mean*; the
  // query's own mean tracks it loosely. Wide tolerances.
  EXPECT_NEAR(static_cast<double>(low) / 400.0, 0.2, 0.12);
  EXPECT_NEAR(static_cast<double>(mid) / 400.0, 0.5, 0.15);
  EXPECT_NEAR(static_cast<double>(high) / 400.0, 0.3, 0.15);
}

TEST(QueryWorkloadTest, Deterministic) {
  StockOptions stock_options;
  stock_options.num_sequences = 30;
  const seqdb::SequenceDatabase db = GenerateStocks(stock_options);
  QueryWorkloadOptions options;
  options.num_queries = 12;
  const auto a = ExtractQueries(db, options);
  const auto b = ExtractQueries(db, options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

}  // namespace
}  // namespace tswarp::datagen
