// Failure injection: corrupted / truncated disk bundles and fingerprints
// must surface as clean Status errors, never as wrong answers or crashes.

#include <filesystem>
#include <cstring>
#include <fstream>

#include <gtest/gtest.h>

#include "core/index.h"
#include "datagen/generators.h"
#include "storage/mmap_file.h"
#include "suffixtree/disk_tree.h"
#include "suffixtree/suffix_tree.h"

namespace tswarp {
namespace {

class FailureInjectionTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tswarp_inject_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  void WriteBundle(const std::string& base) {
    suffixtree::SymbolDatabase db;
    db.Add({1, 2, 1, 2, 3, 1});
    db.Add({2, 3, 2, 1});
    const suffixtree::SuffixTree tree = suffixtree::BuildSuffixTree(db);
    ASSERT_TRUE(suffixtree::WriteTreeToDisk(tree, base).ok());
  }

  static void CorruptFile(const std::string& path, std::size_t offset,
                          const char* junk) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good()) << path;
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(junk, static_cast<std::streamsize>(std::strlen(junk)));
  }

  std::filesystem::path dir_;
};

TEST_F(FailureInjectionTest, CorruptMetaMagicRejected) {
  WriteBundle(Path("t"));
  CorruptFile(Path("t") + ".meta", 0, "XXXXXXXX");
  auto tree = suffixtree::DiskSuffixTree::Open(Path("t"));
  ASSERT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), StatusCode::kCorruption);
}

TEST_F(FailureInjectionTest, MissingRegionFileRejected) {
  WriteBundle(Path("t"));
  std::filesystem::remove(Path("t") + ".labels");
  auto tree = suffixtree::DiskSuffixTree::Open(Path("t"));
  ASSERT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), StatusCode::kIOError);
}

TEST_F(FailureInjectionTest, UnfinalizedMetaRejected) {
  WriteBundle(Path("t"));
  // Byte 12 is the `finalized` field (magic u64 + version u32).
  const char zero[1] = {0};
  std::fstream f(Path("t") + ".meta",
                 std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(12);
  f.write(zero, 1);
  f.close();
  auto tree = suffixtree::DiskSuffixTree::Open(Path("t"));
  ASSERT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), StatusCode::kCorruption);
}

TEST_F(FailureInjectionTest, GarbageFingerprintRejected) {
  datagen::RandomWalkOptions data;
  data.num_sequences = 4;
  data.avg_length = 20;
  const seqdb::SequenceDatabase db = datagen::GenerateRandomWalks(data);
  core::IndexOptions options;
  options.kind = core::IndexKind::kSparse;
  options.num_categories = 4;
  options.disk_path = Path("idx");
  ASSERT_TRUE(core::Index::Build(&db, options).ok());
  CorruptFile(Path("idx") + ".index", 0, "garbage!");
  auto reopened = core::Index::Open(&db, options);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
}

TEST_F(FailureInjectionTest, EmptySymbolDatabaseBuildFails) {
  suffixtree::SymbolDatabase empty;
  auto tree = suffixtree::BuildDiskTree(empty, Path("e"));
  EXPECT_FALSE(tree.ok());
}

// --- mmap read path: every malformed bundle is refused at Open with a
// clean Corruption status — the mapping validates section extents up
// front, so no query ever dereferences past EOF (no SIGBUS).

suffixtree::DiskTreeOptions MmapOptions() {
  suffixtree::DiskTreeOptions options;
  options.io_mode = storage::IoMode::kMmap;
  return options;
}

TEST_F(FailureInjectionTest, TruncatedNodesRejectedUnderMmap) {
  WriteBundle(Path("t"));
  // 40 bytes holds one 32-byte node record at most; the bundle has more.
  std::filesystem::resize_file(Path("t") + ".nodes", 40);
  auto tree = suffixtree::DiskSuffixTree::Open(Path("t"), MmapOptions());
  ASSERT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), StatusCode::kCorruption);
}

TEST_F(FailureInjectionTest, TruncatedOccsRejectedUnderMmap) {
  WriteBundle(Path("t"));
  std::filesystem::resize_file(Path("t") + ".occs", 8);
  auto tree = suffixtree::DiskSuffixTree::Open(Path("t"), MmapOptions());
  ASSERT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), StatusCode::kCorruption);
}

TEST_F(FailureInjectionTest, CorruptSectionTableRejected) {
  WriteBundle(Path("t"));
  // Byte 40 starts the v2 section table (section_count).
  CorruptFile(Path("t") + ".meta", 40, "XXXXXXXX");
  auto tree = suffixtree::DiskSuffixTree::Open(Path("t"), MmapOptions());
  ASSERT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), StatusCode::kCorruption);
}

TEST_F(FailureInjectionTest, V1BundleRejectedByMmapOpensBuffered) {
  WriteBundle(Path("t"));
  ASSERT_TRUE(suffixtree::DowngradeBundleToV1ForTest(Path("t")).ok());
  // The mmap path needs the v2 section table; v1 gets a clean refusal...
  auto mapped = suffixtree::DiskSuffixTree::Open(Path("t"), MmapOptions());
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kCorruption);
  // ...while the buffered path still serves the old format.
  auto buffered = suffixtree::DiskSuffixTree::Open(Path("t"));
  ASSERT_TRUE(buffered.ok()) << buffered.status().ToString();
  EXPECT_EQ((*buffered)->format_version(), 1u);
}

TEST_F(FailureInjectionTest, WriterFailsCleanlyWithoutParentDir) {
  // The writer's durable-publish path (create, write, fsync files, fsync
  // the containing directory) must surface a missing directory as a
  // Status, not a crash — the same error path a failed directory fsync
  // takes after a merge rename.
  suffixtree::SymbolDatabase db;
  db.Add({1, 2, 1, 2, 3, 1});
  const suffixtree::SuffixTree tree = suffixtree::BuildSuffixTree(db);
  const std::string base = Path("no_such_subdir") + "/t";
  auto written = suffixtree::WriteTreeToDisk(tree, base);
  EXPECT_FALSE(written.ok());
}

TEST_F(FailureInjectionTest, PublishedBundleLeavesNoTempFiles) {
  // After a build that goes through the tmp-write + rename + dir-fsync
  // publish protocol, only the final bundle names remain and the result
  // reopens on the mmap path.
  datagen::RandomWalkOptions data;
  data.num_sequences = 6;
  data.avg_length = 24;
  const seqdb::SequenceDatabase db = datagen::GenerateRandomWalks(data);
  core::IndexOptions options;
  options.kind = core::IndexKind::kSparse;
  options.num_categories = 4;
  options.disk_path = Path("pub");
  options.disk_batch_sequences = 2;  // Force spill + merge intermediates.
  options.disk_io_mode = storage::IoMode::kMmap;
  auto index = core::Index::Build(&db, options);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().filename().string().find("tmp"),
              std::string::npos)
        << "leftover temp file: " << entry.path();
  }
  auto reopened = core::Index::Open(&db, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_GT(reopened->MappedStats().mapped_bytes, 0u);
}

}  // namespace
}  // namespace tswarp
