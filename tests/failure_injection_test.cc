// Failure injection: corrupted / truncated disk bundles and fingerprints
// must surface as clean Status errors, never as wrong answers or crashes.

#include <filesystem>
#include <cstring>
#include <fstream>

#include <gtest/gtest.h>

#include "core/index.h"
#include "datagen/generators.h"
#include "suffixtree/disk_tree.h"
#include "suffixtree/suffix_tree.h"

namespace tswarp {
namespace {

class FailureInjectionTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tswarp_inject_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  void WriteBundle(const std::string& base) {
    suffixtree::SymbolDatabase db;
    db.Add({1, 2, 1, 2, 3, 1});
    db.Add({2, 3, 2, 1});
    const suffixtree::SuffixTree tree = suffixtree::BuildSuffixTree(db);
    ASSERT_TRUE(suffixtree::WriteTreeToDisk(tree, base).ok());
  }

  static void CorruptFile(const std::string& path, std::size_t offset,
                          const char* junk) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good()) << path;
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(junk, static_cast<std::streamsize>(std::strlen(junk)));
  }

  std::filesystem::path dir_;
};

TEST_F(FailureInjectionTest, CorruptMetaMagicRejected) {
  WriteBundle(Path("t"));
  CorruptFile(Path("t") + ".meta", 0, "XXXXXXXX");
  auto tree = suffixtree::DiskSuffixTree::Open(Path("t"));
  ASSERT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), StatusCode::kCorruption);
}

TEST_F(FailureInjectionTest, MissingRegionFileRejected) {
  WriteBundle(Path("t"));
  std::filesystem::remove(Path("t") + ".labels");
  auto tree = suffixtree::DiskSuffixTree::Open(Path("t"));
  ASSERT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), StatusCode::kIOError);
}

TEST_F(FailureInjectionTest, UnfinalizedMetaRejected) {
  WriteBundle(Path("t"));
  // Byte 12 is the `finalized` field (magic u64 + version u32).
  const char zero[1] = {0};
  std::fstream f(Path("t") + ".meta",
                 std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(12);
  f.write(zero, 1);
  f.close();
  auto tree = suffixtree::DiskSuffixTree::Open(Path("t"));
  ASSERT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), StatusCode::kCorruption);
}

TEST_F(FailureInjectionTest, GarbageFingerprintRejected) {
  datagen::RandomWalkOptions data;
  data.num_sequences = 4;
  data.avg_length = 20;
  const seqdb::SequenceDatabase db = datagen::GenerateRandomWalks(data);
  core::IndexOptions options;
  options.kind = core::IndexKind::kSparse;
  options.num_categories = 4;
  options.disk_path = Path("idx");
  ASSERT_TRUE(core::Index::Build(&db, options).ok());
  CorruptFile(Path("idx") + ".index", 0, "garbage!");
  auto reopened = core::Index::Open(&db, options);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
}

TEST_F(FailureInjectionTest, EmptySymbolDatabaseBuildFails) {
  suffixtree::SymbolDatabase empty;
  auto tree = suffixtree::BuildDiskTree(empty, Path("e"));
  EXPECT_FALSE(tree.ok());
}

}  // namespace
}  // namespace tswarp
