// End-to-end tests of tswarpd's streaming surface: POST /append into a
// TieredIndex-backed handle, per-tier /stats, and the continuous-query
// register/poll/unregister endpoints — plus the static-mode guard rails
// (appends rejected with a clear 400, never a crash).

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/index.h"
#include "core/tiered_index.h"
#include "datagen/generators.h"
#include "seqdb/sequence_database.h"
#include "server/client.h"
#include "server/index_handle.h"
#include "server/json.h"
#include "server/server.h"

namespace tswarp::server {
namespace {

seqdb::SequenceDatabase TestDb(std::uint64_t seed = 1) {
  datagen::RandomWalkOptions options;
  options.num_sequences = 8;
  options.avg_length = 32;
  options.length_jitter = 6;
  options.seed = seed;
  return datagen::GenerateRandomWalks(options);
}

struct StreamingServer {
  std::shared_ptr<core::TieredIndex> tiered;
  std::unique_ptr<IndexHandle> handle;
  std::unique_ptr<Server> server;
};

StreamingServer StartStreaming(const seqdb::SequenceDatabase* db,
                               std::size_t memtable_max = 2) {
  StreamingServer ss;
  core::TieredOptions options;
  options.index.kind = core::IndexKind::kCategorized;
  options.index.num_categories = 8;
  options.memtable_max_sequences = memtable_max;
  options.max_sealed_tiers = 1;
  options.merge_in_background = false;  // Deterministic tier shapes.
  auto tiered = core::TieredIndex::Create(db, options);
  EXPECT_TRUE(tiered.ok()) << tiered.status().ToString();
  ss.tiered = std::move(*tiered);
  ss.handle = std::make_unique<IndexHandle>(ss.tiered);
  auto started = Server::Start(ss.handle.get(), {});
  EXPECT_TRUE(started.ok()) << started.status().ToString();
  ss.server = std::move(*started);
  return ss;
}

std::string SequenceBody(const char* key, const std::vector<Value>& values,
                         const std::string& extra = "") {
  std::string body = std::string("{\"") + key + "\":[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) body.push_back(',');
    AppendJsonNumber(&body, values[i]);
  }
  body += "]" + extra + "}";
  return body;
}

JsonValue Parse(const std::string& body) {
  auto parsed = ParseJson(body);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString() << " in " << body;
  return parsed.ok() ? *parsed : JsonValue();
}

TEST(ServerStreamingTest, StaticModeRejectsAppendAndContinuous) {
  const seqdb::SequenceDatabase db = TestDb();
  core::IndexOptions options;
  options.kind = core::IndexKind::kCategorized;
  options.num_categories = 8;
  auto index = core::Index::Build(&db, options);
  ASSERT_TRUE(index.ok());
  IndexHandle handle(std::move(*index));
  auto server = Server::Start(&handle, {});
  ASSERT_TRUE(server.ok());

  auto client = HttpClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  auto append = client->Post("/append", "{\"values\":[1,2,3]}");
  ASSERT_TRUE(append.ok());
  EXPECT_EQ(append->status, 400);
  const JsonValue body = Parse(append->body);
  ASSERT_NE(body.Find("error"), nullptr);
  EXPECT_EQ(body.Find("error")->Find("code")->AsString(),
            "append_unsupported");

  auto reg = client->Post("/continuous/register",
                          "{\"query\":[1,2,3],\"epsilon\":1}");
  ASSERT_TRUE(reg.ok());
  EXPECT_EQ(reg->status, 400);

  // A static /stats still reports exactly one tier.
  auto stats = client->Get("/stats");
  ASSERT_TRUE(stats.ok());
  const JsonValue stats_body = Parse(stats->body);
  ASSERT_NE(stats_body.Find("index"), nullptr);
  EXPECT_EQ(stats_body.Find("index")->Find("tiers")->AsArray().size(), 1u);
  EXPECT_EQ(stats_body.Find("tiered"), nullptr);
}

TEST(ServerStreamingTest, AppendIsSearchableAndStatsShowTiers) {
  const seqdb::SequenceDatabase db = TestDb();
  StreamingServer ss = StartStreaming(&db);
  auto client = HttpClient::Connect("127.0.0.1", ss.server->port());
  ASSERT_TRUE(client.ok());

  // Append a recognizable ramp and search a verbatim slice of it.
  std::vector<Value> fresh;
  for (int i = 0; i < 16; ++i) fresh.push_back(100.0 + 3.0 * i);
  auto appended = client->Post("/append", SequenceBody("values", fresh));
  ASSERT_TRUE(appended.ok());
  ASSERT_EQ(appended->status, 200) << appended->body;
  const JsonValue append_body = Parse(appended->body);
  ASSERT_NE(append_body.Find("seq"), nullptr);
  const auto seq_id = static_cast<std::size_t>(
      append_body.Find("seq")->AsNumber());
  EXPECT_EQ(seq_id, db.size());

  const std::vector<Value> probe(fresh.begin() + 2, fresh.begin() + 9);
  auto search = client->Post(
      "/search", SequenceBody("query", probe, ",\"epsilon\":0.01"));
  ASSERT_TRUE(search.ok());
  ASSERT_EQ(search->status, 200);
  const JsonValue search_body = Parse(search->body);
  bool found = false;
  for (const JsonValue& m : search_body.Find("matches")->AsArray()) {
    if (static_cast<std::size_t>(m.Find("seq")->AsNumber()) == seq_id) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "appended sequence missing from /search";

  // Bad bodies are 400s, not crashes.
  EXPECT_EQ(client->Post("/append", "{\"values\":[]}")->status, 400);
  EXPECT_EQ(client->Post("/append", "{\"values\":[1,\"x\"]}")->status, 400);
  EXPECT_EQ(client->Post("/append", "not json")->status, 400);

  auto stats = client->Get("/stats");
  ASSERT_TRUE(stats.ok());
  const JsonValue stats_body = Parse(stats->body);
  const JsonValue* index_obj = stats_body.Find("index");
  ASSERT_NE(index_obj, nullptr);
  EXPECT_EQ(static_cast<std::size_t>(
                index_obj->Find("sequences")->AsNumber()),
            db.size() + 1);
  const auto& tiers = index_obj->Find("tiers")->AsArray();
  ASSERT_EQ(tiers.size(), 2u);  // Base + one-sequence memtable.
  EXPECT_TRUE(tiers[1].Find("memtable")->AsBool());
  EXPECT_EQ(static_cast<std::size_t>(tiers[1].Find("first_seq")->AsNumber()),
            db.size());
  const JsonValue* tiered = stats_body.Find("tiered");
  ASSERT_NE(tiered, nullptr);
  EXPECT_EQ(tiered->Find("appended_sequences")->AsNumber(), 1.0);
  EXPECT_EQ(tiered->Find("appends")->AsNumber(), 1.0);
  EXPECT_EQ(tiered->Find("memtable_sequences")->AsNumber(), 1.0);
}

TEST(ServerStreamingTest, ContinuousRegisterPollUnregisterRoundTrip) {
  const seqdb::SequenceDatabase db = TestDb();
  StreamingServer ss = StartStreaming(&db, /*memtable_max=*/8);
  auto client = HttpClient::Connect("127.0.0.1", ss.server->port());
  ASSERT_TRUE(client.ok());

  std::vector<Value> pattern;
  for (int i = 0; i < 10; ++i) pattern.push_back(200.0 + 5.0 * i);
  const std::vector<Value> q(pattern.begin(), pattern.begin() + 5);

  auto reg = client->Post("/continuous/register",
                          SequenceBody("query", q, ",\"epsilon\":0.01"));
  ASSERT_TRUE(reg.ok());
  ASSERT_EQ(reg->status, 200) << reg->body;
  const JsonValue reg_body = Parse(reg->body);
  ASSERT_NE(reg_body.Find("id"), nullptr);
  const std::string id_body =
      "{\"id\":" + std::to_string(static_cast<std::uint64_t>(
                       reg_body.Find("id")->AsNumber())) +
      "}";

  // Nothing appended yet: poll drains empty.
  auto poll = client->Post("/continuous/poll", id_body);
  ASSERT_TRUE(poll.ok());
  ASSERT_EQ(poll->status, 200);
  EXPECT_EQ(Parse(poll->body).Find("count")->AsNumber(), 0.0);

  // A matching append lands in the channel; a non-matching one does not.
  ASSERT_EQ(client->Post("/append", SequenceBody("values", pattern))->status,
            200);
  ASSERT_EQ(client->Post("/append",
                         "{\"values\":[-900,-900,-900,-900,-900,-900]}")
                ->status,
            200);
  poll = client->Post("/continuous/poll", id_body);
  ASSERT_TRUE(poll.ok());
  const JsonValue poll_body = Parse(poll->body);
  EXPECT_GE(poll_body.Find("count")->AsNumber(), 1.0);
  EXPECT_EQ(poll_body.Find("dropped")->AsNumber(), 0.0);
  for (const JsonValue& m : poll_body.Find("matches")->AsArray()) {
    EXPECT_EQ(static_cast<std::size_t>(m.Find("seq")->AsNumber()), db.size());
  }

  // Drained means drained: an immediate re-poll is empty.
  poll = client->Post("/continuous/poll", id_body);
  EXPECT_EQ(Parse(poll->body).Find("count")->AsNumber(), 0.0);

  auto unreg = client->Post("/continuous/unregister", id_body);
  ASSERT_TRUE(unreg.ok());
  EXPECT_EQ(unreg->status, 200);
  EXPECT_EQ(ss.tiered->Stats().continuous_queries, 0u);
  // The id is gone for both poll and a second unregister.
  EXPECT_EQ(client->Post("/continuous/poll", id_body)->status, 404);
  EXPECT_EQ(client->Post("/continuous/unregister", id_body)->status, 404);
  EXPECT_EQ(client->Post("/continuous/poll", "{\"id\":\"x\"}")->status, 400);
}

TEST(ServerStreamingTest, SearchesDuringAppendsSeeConsistentSnapshots) {
  // Interleave appends and searches on one connection while merges are
  // owed: every response must reflect a fully published snapshot (the
  // sequence count only grows, and matches never name unknown ids).
  const seqdb::SequenceDatabase db = TestDb(3);
  StreamingServer ss = StartStreaming(&db, /*memtable_max=*/1);
  auto client = HttpClient::Connect("127.0.0.1", ss.server->port());
  ASSERT_TRUE(client.ok());

  const std::span<const Value> sub = db.Subsequence(0, 2, 6);
  const std::vector<Value> q(sub.begin(), sub.end());
  std::size_t last_sequences = 0;
  for (int round = 0; round < 6; ++round) {
    std::vector<Value> seq;
    for (int i = 0; i < 12; ++i) {
      seq.push_back(static_cast<Value>(round * 10 + i));
    }
    ASSERT_EQ(client->Post("/append", SequenceBody("values", seq))->status,
              200);
    auto search = client->Post(
        "/search", SequenceBody("query", q, ",\"epsilon\":2"));
    ASSERT_TRUE(search.ok());
    ASSERT_EQ(search->status, 200);
    auto stats = client->Get("/stats");
    ASSERT_TRUE(stats.ok());
    const JsonValue stats_body = Parse(stats->body);
    const auto sequences = static_cast<std::size_t>(
        stats_body.Find("index")->Find("sequences")->AsNumber());
    EXPECT_GE(sequences, last_sequences);
    last_sequences = sequences;
  }
  ss.tiered->WaitForMerges();
  EXPECT_EQ(ss.tiered->Snapshot()->total_sequences(), db.size() + 6);
}

}  // namespace
}  // namespace tswarp::server
