# Empty compiler generated dependencies file for tswarp_core.
# This may be replaced when dependencies are built.
