file(REMOVE_RECURSE
  "CMakeFiles/tswarp_core.dir/category_selection.cc.o"
  "CMakeFiles/tswarp_core.dir/category_selection.cc.o.d"
  "CMakeFiles/tswarp_core.dir/consolidate.cc.o"
  "CMakeFiles/tswarp_core.dir/consolidate.cc.o.d"
  "CMakeFiles/tswarp_core.dir/dictionary.cc.o"
  "CMakeFiles/tswarp_core.dir/dictionary.cc.o.d"
  "CMakeFiles/tswarp_core.dir/index.cc.o"
  "CMakeFiles/tswarp_core.dir/index.cc.o.d"
  "CMakeFiles/tswarp_core.dir/seq_scan.cc.o"
  "CMakeFiles/tswarp_core.dir/seq_scan.cc.o.d"
  "CMakeFiles/tswarp_core.dir/tree_search.cc.o"
  "CMakeFiles/tswarp_core.dir/tree_search.cc.o.d"
  "libtswarp_core.a"
  "libtswarp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tswarp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
