file(REMOVE_RECURSE
  "libtswarp_core.a"
)
