
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/category_selection.cc" "src/core/CMakeFiles/tswarp_core.dir/category_selection.cc.o" "gcc" "src/core/CMakeFiles/tswarp_core.dir/category_selection.cc.o.d"
  "/root/repo/src/core/consolidate.cc" "src/core/CMakeFiles/tswarp_core.dir/consolidate.cc.o" "gcc" "src/core/CMakeFiles/tswarp_core.dir/consolidate.cc.o.d"
  "/root/repo/src/core/dictionary.cc" "src/core/CMakeFiles/tswarp_core.dir/dictionary.cc.o" "gcc" "src/core/CMakeFiles/tswarp_core.dir/dictionary.cc.o.d"
  "/root/repo/src/core/index.cc" "src/core/CMakeFiles/tswarp_core.dir/index.cc.o" "gcc" "src/core/CMakeFiles/tswarp_core.dir/index.cc.o.d"
  "/root/repo/src/core/seq_scan.cc" "src/core/CMakeFiles/tswarp_core.dir/seq_scan.cc.o" "gcc" "src/core/CMakeFiles/tswarp_core.dir/seq_scan.cc.o.d"
  "/root/repo/src/core/tree_search.cc" "src/core/CMakeFiles/tswarp_core.dir/tree_search.cc.o" "gcc" "src/core/CMakeFiles/tswarp_core.dir/tree_search.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tswarp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dtw/CMakeFiles/tswarp_dtw.dir/DependInfo.cmake"
  "/root/repo/build/src/categorize/CMakeFiles/tswarp_categorize.dir/DependInfo.cmake"
  "/root/repo/build/src/seqdb/CMakeFiles/tswarp_seqdb.dir/DependInfo.cmake"
  "/root/repo/build/src/suffixtree/CMakeFiles/tswarp_suffixtree.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/tswarp_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
