
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/seqdb/sequence_database.cc" "src/seqdb/CMakeFiles/tswarp_seqdb.dir/sequence_database.cc.o" "gcc" "src/seqdb/CMakeFiles/tswarp_seqdb.dir/sequence_database.cc.o.d"
  "/root/repo/src/seqdb/transforms.cc" "src/seqdb/CMakeFiles/tswarp_seqdb.dir/transforms.cc.o" "gcc" "src/seqdb/CMakeFiles/tswarp_seqdb.dir/transforms.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tswarp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
