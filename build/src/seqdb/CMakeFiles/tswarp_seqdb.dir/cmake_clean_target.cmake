file(REMOVE_RECURSE
  "libtswarp_seqdb.a"
)
