# Empty dependencies file for tswarp_seqdb.
# This may be replaced when dependencies are built.
