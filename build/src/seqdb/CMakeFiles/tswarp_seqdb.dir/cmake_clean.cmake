file(REMOVE_RECURSE
  "CMakeFiles/tswarp_seqdb.dir/sequence_database.cc.o"
  "CMakeFiles/tswarp_seqdb.dir/sequence_database.cc.o.d"
  "CMakeFiles/tswarp_seqdb.dir/transforms.cc.o"
  "CMakeFiles/tswarp_seqdb.dir/transforms.cc.o.d"
  "libtswarp_seqdb.a"
  "libtswarp_seqdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tswarp_seqdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
