# Empty compiler generated dependencies file for tswarp_suffixtree.
# This may be replaced when dependencies are built.
