file(REMOVE_RECURSE
  "CMakeFiles/tswarp_suffixtree.dir/disk_tree.cc.o"
  "CMakeFiles/tswarp_suffixtree.dir/disk_tree.cc.o.d"
  "CMakeFiles/tswarp_suffixtree.dir/dot_export.cc.o"
  "CMakeFiles/tswarp_suffixtree.dir/dot_export.cc.o.d"
  "CMakeFiles/tswarp_suffixtree.dir/merge.cc.o"
  "CMakeFiles/tswarp_suffixtree.dir/merge.cc.o.d"
  "CMakeFiles/tswarp_suffixtree.dir/suffix_tree.cc.o"
  "CMakeFiles/tswarp_suffixtree.dir/suffix_tree.cc.o.d"
  "CMakeFiles/tswarp_suffixtree.dir/tree_view.cc.o"
  "CMakeFiles/tswarp_suffixtree.dir/tree_view.cc.o.d"
  "CMakeFiles/tswarp_suffixtree.dir/ukkonen.cc.o"
  "CMakeFiles/tswarp_suffixtree.dir/ukkonen.cc.o.d"
  "libtswarp_suffixtree.a"
  "libtswarp_suffixtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tswarp_suffixtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
