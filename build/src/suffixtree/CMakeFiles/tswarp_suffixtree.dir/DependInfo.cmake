
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/suffixtree/disk_tree.cc" "src/suffixtree/CMakeFiles/tswarp_suffixtree.dir/disk_tree.cc.o" "gcc" "src/suffixtree/CMakeFiles/tswarp_suffixtree.dir/disk_tree.cc.o.d"
  "/root/repo/src/suffixtree/dot_export.cc" "src/suffixtree/CMakeFiles/tswarp_suffixtree.dir/dot_export.cc.o" "gcc" "src/suffixtree/CMakeFiles/tswarp_suffixtree.dir/dot_export.cc.o.d"
  "/root/repo/src/suffixtree/merge.cc" "src/suffixtree/CMakeFiles/tswarp_suffixtree.dir/merge.cc.o" "gcc" "src/suffixtree/CMakeFiles/tswarp_suffixtree.dir/merge.cc.o.d"
  "/root/repo/src/suffixtree/suffix_tree.cc" "src/suffixtree/CMakeFiles/tswarp_suffixtree.dir/suffix_tree.cc.o" "gcc" "src/suffixtree/CMakeFiles/tswarp_suffixtree.dir/suffix_tree.cc.o.d"
  "/root/repo/src/suffixtree/tree_view.cc" "src/suffixtree/CMakeFiles/tswarp_suffixtree.dir/tree_view.cc.o" "gcc" "src/suffixtree/CMakeFiles/tswarp_suffixtree.dir/tree_view.cc.o.d"
  "/root/repo/src/suffixtree/ukkonen.cc" "src/suffixtree/CMakeFiles/tswarp_suffixtree.dir/ukkonen.cc.o" "gcc" "src/suffixtree/CMakeFiles/tswarp_suffixtree.dir/ukkonen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tswarp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/tswarp_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
