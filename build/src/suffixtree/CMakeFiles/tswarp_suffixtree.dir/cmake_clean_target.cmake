file(REMOVE_RECURSE
  "libtswarp_suffixtree.a"
)
