file(REMOVE_RECURSE
  "libtswarp_common.a"
)
