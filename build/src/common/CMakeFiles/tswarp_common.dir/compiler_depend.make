# Empty compiler generated dependencies file for tswarp_common.
# This may be replaced when dependencies are built.
