file(REMOVE_RECURSE
  "CMakeFiles/tswarp_common.dir/logging.cc.o"
  "CMakeFiles/tswarp_common.dir/logging.cc.o.d"
  "CMakeFiles/tswarp_common.dir/status.cc.o"
  "CMakeFiles/tswarp_common.dir/status.cc.o.d"
  "libtswarp_common.a"
  "libtswarp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tswarp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
