file(REMOVE_RECURSE
  "libtswarp_categorize.a"
)
