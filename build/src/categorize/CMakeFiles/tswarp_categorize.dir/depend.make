# Empty dependencies file for tswarp_categorize.
# This may be replaced when dependencies are built.
