file(REMOVE_RECURSE
  "CMakeFiles/tswarp_categorize.dir/alphabet.cc.o"
  "CMakeFiles/tswarp_categorize.dir/alphabet.cc.o.d"
  "CMakeFiles/tswarp_categorize.dir/categorizer.cc.o"
  "CMakeFiles/tswarp_categorize.dir/categorizer.cc.o.d"
  "libtswarp_categorize.a"
  "libtswarp_categorize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tswarp_categorize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
