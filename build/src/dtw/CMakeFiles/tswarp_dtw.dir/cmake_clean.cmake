file(REMOVE_RECURSE
  "CMakeFiles/tswarp_dtw.dir/alignment.cc.o"
  "CMakeFiles/tswarp_dtw.dir/alignment.cc.o.d"
  "CMakeFiles/tswarp_dtw.dir/dtw.cc.o"
  "CMakeFiles/tswarp_dtw.dir/dtw.cc.o.d"
  "libtswarp_dtw.a"
  "libtswarp_dtw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tswarp_dtw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
