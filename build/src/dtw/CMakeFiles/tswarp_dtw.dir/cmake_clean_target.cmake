file(REMOVE_RECURSE
  "libtswarp_dtw.a"
)
