# Empty dependencies file for tswarp_dtw.
# This may be replaced when dependencies are built.
