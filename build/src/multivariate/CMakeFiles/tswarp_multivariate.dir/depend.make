# Empty dependencies file for tswarp_multivariate.
# This may be replaced when dependencies are built.
