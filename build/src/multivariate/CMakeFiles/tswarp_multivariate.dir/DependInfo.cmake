
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/multivariate/grid_alphabet.cc" "src/multivariate/CMakeFiles/tswarp_multivariate.dir/grid_alphabet.cc.o" "gcc" "src/multivariate/CMakeFiles/tswarp_multivariate.dir/grid_alphabet.cc.o.d"
  "/root/repo/src/multivariate/multi_dtw.cc" "src/multivariate/CMakeFiles/tswarp_multivariate.dir/multi_dtw.cc.o" "gcc" "src/multivariate/CMakeFiles/tswarp_multivariate.dir/multi_dtw.cc.o.d"
  "/root/repo/src/multivariate/multi_index.cc" "src/multivariate/CMakeFiles/tswarp_multivariate.dir/multi_index.cc.o" "gcc" "src/multivariate/CMakeFiles/tswarp_multivariate.dir/multi_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tswarp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dtw/CMakeFiles/tswarp_dtw.dir/DependInfo.cmake"
  "/root/repo/build/src/categorize/CMakeFiles/tswarp_categorize.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tswarp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/suffixtree/CMakeFiles/tswarp_suffixtree.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/tswarp_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/seqdb/CMakeFiles/tswarp_seqdb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
