file(REMOVE_RECURSE
  "libtswarp_multivariate.a"
)
