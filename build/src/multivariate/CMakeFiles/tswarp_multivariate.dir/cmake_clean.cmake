file(REMOVE_RECURSE
  "CMakeFiles/tswarp_multivariate.dir/grid_alphabet.cc.o"
  "CMakeFiles/tswarp_multivariate.dir/grid_alphabet.cc.o.d"
  "CMakeFiles/tswarp_multivariate.dir/multi_dtw.cc.o"
  "CMakeFiles/tswarp_multivariate.dir/multi_dtw.cc.o.d"
  "CMakeFiles/tswarp_multivariate.dir/multi_index.cc.o"
  "CMakeFiles/tswarp_multivariate.dir/multi_index.cc.o.d"
  "libtswarp_multivariate.a"
  "libtswarp_multivariate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tswarp_multivariate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
