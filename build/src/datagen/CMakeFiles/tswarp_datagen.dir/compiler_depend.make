# Empty compiler generated dependencies file for tswarp_datagen.
# This may be replaced when dependencies are built.
