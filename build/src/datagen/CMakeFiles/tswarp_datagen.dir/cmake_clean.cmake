file(REMOVE_RECURSE
  "CMakeFiles/tswarp_datagen.dir/generators.cc.o"
  "CMakeFiles/tswarp_datagen.dir/generators.cc.o.d"
  "libtswarp_datagen.a"
  "libtswarp_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tswarp_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
