file(REMOVE_RECURSE
  "libtswarp_datagen.a"
)
