# Empty dependencies file for tswarp_storage.
# This may be replaced when dependencies are built.
