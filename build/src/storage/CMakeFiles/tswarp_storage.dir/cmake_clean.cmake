file(REMOVE_RECURSE
  "CMakeFiles/tswarp_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/tswarp_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/tswarp_storage.dir/paged_file.cc.o"
  "CMakeFiles/tswarp_storage.dir/paged_file.cc.o.d"
  "libtswarp_storage.a"
  "libtswarp_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tswarp_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
