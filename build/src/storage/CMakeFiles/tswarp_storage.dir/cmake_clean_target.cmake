file(REMOVE_RECURSE
  "libtswarp_storage.a"
)
