file(REMOVE_RECURSE
  "CMakeFiles/multivariate_sensor.dir/multivariate_sensor.cpp.o"
  "CMakeFiles/multivariate_sensor.dir/multivariate_sensor.cpp.o.d"
  "multivariate_sensor"
  "multivariate_sensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multivariate_sensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
