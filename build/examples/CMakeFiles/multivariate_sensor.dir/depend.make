# Empty dependencies file for multivariate_sensor.
# This may be replaced when dependencies are built.
