file(REMOVE_RECURSE
  "CMakeFiles/stock_screener.dir/stock_screener.cpp.o"
  "CMakeFiles/stock_screener.dir/stock_screener.cpp.o.d"
  "stock_screener"
  "stock_screener.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stock_screener.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
