# Empty dependencies file for stock_screener.
# This may be replaced when dependencies are built.
