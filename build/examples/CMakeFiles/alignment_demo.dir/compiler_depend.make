# Empty compiler generated dependencies file for alignment_demo.
# This may be replaced when dependencies are built.
