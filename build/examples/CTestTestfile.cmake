# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  PASS_REGULAR_EXPRESSION "sequential scan agrees: yes" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_alignment_demo "/root/repo/build/examples/alignment_demo")
set_tests_properties(example_alignment_demo PROPERTIES  PASS_REGULAR_EXPRESSION "D_tw = 12.0" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multivariate_sensor "/root/repo/build/examples/multivariate_sensor")
set_tests_properties(example_multivariate_sensor PROPERTIES  PASS_REGULAR_EXPRESSION "both planted machines found: yes" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stock_screener "/root/repo/build/examples/stock_screener")
set_tests_properties(example_stock_screener PROPERTIES  PASS_REGULAR_EXPRESSION "planted stocks:" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ecg_monitor "/root/repo/build/examples/ecg_monitor")
set_tests_properties(example_ecg_monitor PROPERTIES  PASS_REGULAR_EXPRESSION "best match per channel" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
