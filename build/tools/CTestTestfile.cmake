# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_generate "/root/repo/build/tools/tswarp_cli" "generate" "--kind" "stock" "--out" "/root/repo/build/tools/cli_market.db" "--n" "30" "--len" "80")
set_tests_properties(cli_generate PROPERTIES  FIXTURES_SETUP "cli_db" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_info "/root/repo/build/tools/tswarp_cli" "info" "/root/repo/build/tools/cli_market.db")
set_tests_properties(cli_info PROPERTIES  FIXTURES_REQUIRED "cli_db" PASS_REGULAR_EXPRESSION "sequences:      30" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_build "/root/repo/build/tools/tswarp_cli" "build" "/root/repo/build/tools/cli_market.db" "--index" "/root/repo/build/tools/cli_idx" "--categories" "12")
set_tests_properties(cli_build PROPERTIES  FIXTURES_REQUIRED "cli_db" PASS_REGULAR_EXPRESSION "stored suffixes" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_search "/root/repo/build/tools/tswarp_cli" "search" "/root/repo/build/tools/cli_market.db" "--query" "50,51,52,53" "--epsilon" "8")
set_tests_properties(cli_search PROPERTIES  FIXTURES_REQUIRED "cli_db" PASS_REGULAR_EXPRESSION "matches \\(epsilon" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_search_scan "/root/repo/build/tools/tswarp_cli" "search" "/root/repo/build/tools/cli_market.db" "--query" "50,51,52,53" "--epsilon" "8" "--scan")
set_tests_properties(cli_search_scan PROPERTIES  FIXTURES_REQUIRED "cli_db" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_knn "/root/repo/build/tools/tswarp_cli" "knn" "/root/repo/build/tools/cli_market.db" "--query" "50,51,52,53" "--k" "3")
set_tests_properties(cli_knn PROPERTIES  FIXTURES_REQUIRED "cli_db" PASS_REGULAR_EXPRESSION "nearest subsequences" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_dot "/root/repo/build/tools/tswarp_cli" "dot" "/root/repo/build/tools/cli_market.db" "--max-nodes" "16")
set_tests_properties(cli_dot PROPERTIES  FIXTURES_REQUIRED "cli_db" PASS_REGULAR_EXPRESSION "digraph suffixtree" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/tools/tswarp_cli" "bogus")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
