file(REMOVE_RECURSE
  "CMakeFiles/tswarp_cli.dir/tswarp_cli.cc.o"
  "CMakeFiles/tswarp_cli.dir/tswarp_cli.cc.o.d"
  "tswarp_cli"
  "tswarp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tswarp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
