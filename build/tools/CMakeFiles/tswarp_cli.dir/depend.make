# Empty dependencies file for tswarp_cli.
# This may be replaced when dependencies are built.
