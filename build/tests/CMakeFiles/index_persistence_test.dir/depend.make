# Empty dependencies file for index_persistence_test.
# This may be replaced when dependencies are built.
