file(REMOVE_RECURSE
  "CMakeFiles/disk_tree_test.dir/disk_tree_test.cc.o"
  "CMakeFiles/disk_tree_test.dir/disk_tree_test.cc.o.d"
  "disk_tree_test"
  "disk_tree_test.pdb"
  "disk_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
