# Empty compiler generated dependencies file for disk_tree_test.
# This may be replaced when dependencies are built.
