# Empty compiler generated dependencies file for tree_search_test.
# This may be replaced when dependencies are built.
