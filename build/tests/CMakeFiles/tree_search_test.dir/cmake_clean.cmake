file(REMOVE_RECURSE
  "CMakeFiles/tree_search_test.dir/tree_search_test.cc.o"
  "CMakeFiles/tree_search_test.dir/tree_search_test.cc.o.d"
  "tree_search_test"
  "tree_search_test.pdb"
  "tree_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
