# Empty compiler generated dependencies file for symbol_database_test.
# This may be replaced when dependencies are built.
