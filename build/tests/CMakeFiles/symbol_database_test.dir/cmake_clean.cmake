file(REMOVE_RECURSE
  "CMakeFiles/symbol_database_test.dir/symbol_database_test.cc.o"
  "CMakeFiles/symbol_database_test.dir/symbol_database_test.cc.o.d"
  "symbol_database_test"
  "symbol_database_test.pdb"
  "symbol_database_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbol_database_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
