# Empty compiler generated dependencies file for ukkonen_test.
# This may be replaced when dependencies are built.
