file(REMOVE_RECURSE
  "CMakeFiles/ukkonen_test.dir/ukkonen_test.cc.o"
  "CMakeFiles/ukkonen_test.dir/ukkonen_test.cc.o.d"
  "ukkonen_test"
  "ukkonen_test.pdb"
  "ukkonen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ukkonen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
