# Empty dependencies file for buffer_pool_cycles_test.
# This may be replaced when dependencies are built.
