# Empty compiler generated dependencies file for search_stats_test.
# This may be replaced when dependencies are built.
