file(REMOVE_RECURSE
  "CMakeFiles/search_stats_test.dir/search_stats_test.cc.o"
  "CMakeFiles/search_stats_test.dir/search_stats_test.cc.o.d"
  "search_stats_test"
  "search_stats_test.pdb"
  "search_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
