
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/knn_test.cc" "tests/CMakeFiles/knn_test.dir/knn_test.cc.o" "gcc" "tests/CMakeFiles/knn_test.dir/knn_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datagen/CMakeFiles/tswarp_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/multivariate/CMakeFiles/tswarp_multivariate.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tswarp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/categorize/CMakeFiles/tswarp_categorize.dir/DependInfo.cmake"
  "/root/repo/build/src/dtw/CMakeFiles/tswarp_dtw.dir/DependInfo.cmake"
  "/root/repo/build/src/seqdb/CMakeFiles/tswarp_seqdb.dir/DependInfo.cmake"
  "/root/repo/build/src/suffixtree/CMakeFiles/tswarp_suffixtree.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/tswarp_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tswarp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
