file(REMOVE_RECURSE
  "CMakeFiles/merge_order_test.dir/merge_order_test.cc.o"
  "CMakeFiles/merge_order_test.dir/merge_order_test.cc.o.d"
  "merge_order_test"
  "merge_order_test.pdb"
  "merge_order_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merge_order_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
