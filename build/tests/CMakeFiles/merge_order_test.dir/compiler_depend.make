# Empty compiler generated dependencies file for merge_order_test.
# This may be replaced when dependencies are built.
