# Empty dependencies file for sequence_database_test.
# This may be replaced when dependencies are built.
