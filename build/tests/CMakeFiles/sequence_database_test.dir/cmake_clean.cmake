file(REMOVE_RECURSE
  "CMakeFiles/sequence_database_test.dir/sequence_database_test.cc.o"
  "CMakeFiles/sequence_database_test.dir/sequence_database_test.cc.o.d"
  "sequence_database_test"
  "sequence_database_test.pdb"
  "sequence_database_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequence_database_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
