# Empty compiler generated dependencies file for category_selection_test.
# This may be replaced when dependencies are built.
