file(REMOVE_RECURSE
  "CMakeFiles/category_selection_test.dir/category_selection_test.cc.o"
  "CMakeFiles/category_selection_test.dir/category_selection_test.cc.o.d"
  "category_selection_test"
  "category_selection_test.pdb"
  "category_selection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/category_selection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
