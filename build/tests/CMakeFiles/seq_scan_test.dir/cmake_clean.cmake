file(REMOVE_RECURSE
  "CMakeFiles/seq_scan_test.dir/seq_scan_test.cc.o"
  "CMakeFiles/seq_scan_test.dir/seq_scan_test.cc.o.d"
  "seq_scan_test"
  "seq_scan_test.pdb"
  "seq_scan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_scan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
