# Empty dependencies file for seq_scan_test.
# This may be replaced when dependencies are built.
