file(REMOVE_RECURSE
  "CMakeFiles/reference_dtw_test.dir/reference_dtw_test.cc.o"
  "CMakeFiles/reference_dtw_test.dir/reference_dtw_test.cc.o.d"
  "reference_dtw_test"
  "reference_dtw_test.pdb"
  "reference_dtw_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reference_dtw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
