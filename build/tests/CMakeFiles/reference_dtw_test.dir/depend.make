# Empty dependencies file for reference_dtw_test.
# This may be replaced when dependencies are built.
