file(REMOVE_RECURSE
  "CMakeFiles/categorizer_test.dir/categorizer_test.cc.o"
  "CMakeFiles/categorizer_test.dir/categorizer_test.cc.o.d"
  "categorizer_test"
  "categorizer_test.pdb"
  "categorizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/categorizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
