file(REMOVE_RECURSE
  "CMakeFiles/warping_table_test.dir/warping_table_test.cc.o"
  "CMakeFiles/warping_table_test.dir/warping_table_test.cc.o.d"
  "warping_table_test"
  "warping_table_test.pdb"
  "warping_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warping_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
