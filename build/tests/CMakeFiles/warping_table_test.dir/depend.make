# Empty dependencies file for warping_table_test.
# This may be replaced when dependencies are built.
