# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for warping_table_test.
