# Empty dependencies file for ext_length_bounds.
# This may be replaced when dependencies are built.
