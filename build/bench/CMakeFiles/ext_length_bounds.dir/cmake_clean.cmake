file(REMOVE_RECURSE
  "CMakeFiles/ext_length_bounds.dir/ext_length_bounds.cc.o"
  "CMakeFiles/ext_length_bounds.dir/ext_length_bounds.cc.o.d"
  "ext_length_bounds"
  "ext_length_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_length_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
