file(REMOVE_RECURSE
  "CMakeFiles/ablation_categorizer.dir/ablation_categorizer.cc.o"
  "CMakeFiles/ablation_categorizer.dir/ablation_categorizer.cc.o.d"
  "ablation_categorizer"
  "ablation_categorizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_categorizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
