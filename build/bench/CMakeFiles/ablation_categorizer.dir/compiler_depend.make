# Empty compiler generated dependencies file for ablation_categorizer.
# This may be replaced when dependencies are built.
