file(REMOVE_RECURSE
  "CMakeFiles/fig4_scalability_length.dir/fig4_scalability_length.cc.o"
  "CMakeFiles/fig4_scalability_length.dir/fig4_scalability_length.cc.o.d"
  "fig4_scalability_length"
  "fig4_scalability_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_scalability_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
