file(REMOVE_RECURSE
  "CMakeFiles/ext_knn.dir/ext_knn.cc.o"
  "CMakeFiles/ext_knn.dir/ext_knn.cc.o.d"
  "ext_knn"
  "ext_knn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_knn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
