# Empty compiler generated dependencies file for ext_knn.
# This may be replaced when dependencies are built.
