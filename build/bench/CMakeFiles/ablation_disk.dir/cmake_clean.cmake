file(REMOVE_RECURSE
  "CMakeFiles/ablation_disk.dir/ablation_disk.cc.o"
  "CMakeFiles/ablation_disk.dir/ablation_disk.cc.o.d"
  "ablation_disk"
  "ablation_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
