# Empty compiler generated dependencies file for table2_query_time.
# This may be replaced when dependencies are built.
