file(REMOVE_RECURSE
  "CMakeFiles/table2_query_time.dir/table2_query_time.cc.o"
  "CMakeFiles/table2_query_time.dir/table2_query_time.cc.o.d"
  "table2_query_time"
  "table2_query_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_query_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
