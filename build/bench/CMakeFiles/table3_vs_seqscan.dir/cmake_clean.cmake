file(REMOVE_RECURSE
  "CMakeFiles/table3_vs_seqscan.dir/table3_vs_seqscan.cc.o"
  "CMakeFiles/table3_vs_seqscan.dir/table3_vs_seqscan.cc.o.d"
  "table3_vs_seqscan"
  "table3_vs_seqscan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_vs_seqscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
