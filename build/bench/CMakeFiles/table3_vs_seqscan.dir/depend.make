# Empty dependencies file for table3_vs_seqscan.
# This may be replaced when dependencies are built.
