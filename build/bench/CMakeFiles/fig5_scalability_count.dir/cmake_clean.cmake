file(REMOVE_RECURSE
  "CMakeFiles/fig5_scalability_count.dir/fig5_scalability_count.cc.o"
  "CMakeFiles/fig5_scalability_count.dir/fig5_scalability_count.cc.o.d"
  "fig5_scalability_count"
  "fig5_scalability_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_scalability_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
