# Empty dependencies file for fig5_scalability_count.
# This may be replaced when dependencies are built.
