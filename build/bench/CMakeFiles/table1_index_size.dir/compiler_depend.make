# Empty compiler generated dependencies file for table1_index_size.
# This may be replaced when dependencies are built.
