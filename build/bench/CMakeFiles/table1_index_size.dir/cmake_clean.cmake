file(REMOVE_RECURSE
  "CMakeFiles/table1_index_size.dir/table1_index_size.cc.o"
  "CMakeFiles/table1_index_size.dir/table1_index_size.cc.o.d"
  "table1_index_size"
  "table1_index_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_index_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
