# Empty compiler generated dependencies file for ablation_query_length.
# This may be replaced when dependencies are built.
