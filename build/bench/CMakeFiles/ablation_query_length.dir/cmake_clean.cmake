file(REMOVE_RECURSE
  "CMakeFiles/ablation_query_length.dir/ablation_query_length.cc.o"
  "CMakeFiles/ablation_query_length.dir/ablation_query_length.cc.o.d"
  "ablation_query_length"
  "ablation_query_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_query_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
