// tswarp command-line tool: generate synthetic sequence databases, build
// and persist indexes, and run time-warping subsequence queries without
// writing any code.
//
//   tswarp_cli generate --kind stock --out market.db [--n 545] [--seed 7]
//   tswarp_cli info market.db
//   tswarp_cli build market.db --index /tmp/market_idx [--categories 40]
//   tswarp_cli search market.db --query 50,51,53,52 --epsilon 10
//   tswarp_cli search market.db --query 50,51,53,52 --epsilon 10
//       --index /tmp/market_idx          (reuses a persisted index)
//   tswarp_cli knn market.db --query 50,51,53,52 --k 5
//   tswarp_cli dot market.db --categories 8 --max-nodes 64

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "core/index.h"
#include "core/seq_scan.h"
#include "dtw/simd.h"
#include "storage/buffer_manager.h"
#include "datagen/generators.h"
#include "multivariate/multi_index.h"
#include "suffixtree/dot_export.h"

namespace tswarp {
namespace {

using core::Index;
using core::IndexKind;
using core::IndexOptions;
using core::Match;

const char* FlagValue(int argc, char** argv, const char* flag,
                      const char* fallback) {
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

long FlagLong(int argc, char** argv, const char* flag, long fallback) {
  const char* v = FlagValue(argc, argv, flag, nullptr);
  return v == nullptr ? fallback : std::atol(v);
}

double FlagDouble(int argc, char** argv, const char* flag, double fallback) {
  const char* v = FlagValue(argc, argv, flag, nullptr);
  return v == nullptr ? fallback : std::atof(v);
}

// --threads must be a non-negative count; a negative value would wrap to a
// huge std::size_t. Returns false (after printing) on a bad value.
bool FlagThreads(int argc, char** argv, std::size_t* out) {
  const long raw = FlagLong(argc, argv, "--threads", 0);
  if (raw < 0) {
    std::fprintf(stderr, "--threads must be >= 0 (got %ld)\n", raw);
    return false;
  }
  *out = static_cast<std::size_t>(raw);
  return true;
}

// --band must be in [0, |Q|]: negative values would wrap, and a band wider
// than the query adds no legal warping paths — it only degenerates the
// query envelope, so treat it as a usage error rather than silently
// accepting it. 0 means unconstrained warping.
bool FlagBand(int argc, char** argv, std::size_t query_length, Pos* out) {
  const long raw = FlagLong(argc, argv, "--band", 0);
  if (raw < 0) {
    std::fprintf(stderr, "--band must be >= 0 (got %ld)\n", raw);
    return false;
  }
  if (static_cast<std::size_t>(raw) > query_length) {
    std::fprintf(stderr,
                 "--band %ld exceeds the query length %zu; a band wider "
                 "than the query is meaningless (use --band 0 for "
                 "unconstrained warping)\n",
                 raw, query_length);
    return false;
  }
  *out = static_cast<Pos>(raw);
  return true;
}

std::vector<Value> ParseQuery(const char* text) {
  std::vector<Value> out;
  if (text == nullptr) return out;
  const char* p = text;
  while (*p != '\0') {
    char* end = nullptr;
    const double v = std::strtod(p, &end);
    if (end == p) break;
    out.push_back(v);
    p = (*end == ',') ? end + 1 : end;
  }
  return out;
}

int Usage() {
  std::fprintf(stderr,
               "usage: tswarp_cli <generate|info|build|search|knn|dot> "
               "[args]\n"
               "  generate --kind stock|walk|ecg --out FILE [--n N] "
               "[--len L] [--seed S]\n"
               "  info DB\n"
               "  build DB --index PATH [--kind st|stc|sstc] "
               "[--categories C] [--method el|me|km] [--pool-pages P] "
               "[--pool-shards S] [--eviction lru|clock] [--readahead R] "
               "[--io mmap|buffered] [--no-summaries]\n"
               "  search DB --query v1,v2,... --epsilon E [--kind ...] "
               "[--categories C] [--index PATH] [--scan] [--limit N] "
               "[--threads T] [--band B] [--no-lb] [--no-summaries] "
               "[--approx-factor F] [--stats] [--multi D] "
               "[--pool-pages P] [--pool-shards S] [--eviction lru|clock] "
               "[--readahead R] [--io mmap|buffered]\n"
               "  knn DB --query v1,v2,... --k K [--kind ...] "
               "[--categories C] [--threads T] [--band B] [--no-lb] "
               "[--no-summaries] [--approx-factor F] [--stats] "
               "[--multi D]\n"
               "  dot DB [--categories C] [--max-nodes N]\n"
               "--multi D reads DB as D-dimensional sequences (flattened "
               "element-major; every sequence and the query must have a "
               "multiple of D values). --kind stc = dense grid index, "
               "sstc = sparse; st has no multivariate analogue.\n"
               "--simd avx2|sse2|neon|scalar (any command) pins the DTW "
               "kernel backend, overriding auto-detection and the "
               "TSWARP_SIMD environment variable.\n"
               "--no-summaries disables the node-summary screen; "
               "--approx-factor F (>= 1) is its recall dial — 1 is exact, "
               "larger prunes harder and may drop matches (see "
               "docs/tuning.md).\n");
  return 2;
}

StatusOr<seqdb::SequenceDatabase> LoadDb(int argc, char** argv) {
  if (argc < 3) return Status::InvalidArgument("missing database path");
  return seqdb::SequenceDatabase::Load(argv[2]);
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

void PrintPoolLine(const char* name,
                   const storage::BufferManager::Stats& s) {
  std::printf("pool %-7s hits %llu, misses %llu, readaheads %llu, "
              "evictions %llu, writebacks %llu, overflow-pins %llu, "
              "shard-conflicts %llu\n",
              name, static_cast<unsigned long long>(s.hits),
              static_cast<unsigned long long>(s.misses),
              static_cast<unsigned long long>(s.readaheads),
              static_cast<unsigned long long>(s.evictions),
              static_cast<unsigned long long>(s.writebacks),
              static_cast<unsigned long long>(s.overflow_pins),
              static_cast<unsigned long long>(s.shard_conflicts));
}

/// Prints the merged traversal counters of one search. Shared by the
/// univariate and multivariate paths: both run core::SearchDriver, so the
/// counters mean the same thing in either mode.
void PrintStatsCounters(const core::SearchStats& stats) {
  std::printf(
      "stats: nodes %llu, rows %llu (+%llu replayed), pruned %llu, "
      "candidates %llu, endpoint-rejected %llu, lb-screened %llu, "
      "lb-pruned %llu, exact DTW %llu\n",
      static_cast<unsigned long long>(stats.nodes_visited),
      static_cast<unsigned long long>(stats.rows_pushed),
      static_cast<unsigned long long>(stats.replayed_rows),
      static_cast<unsigned long long>(stats.branches_pruned),
      static_cast<unsigned long long>(stats.candidates),
      static_cast<unsigned long long>(stats.endpoint_rejections),
      static_cast<unsigned long long>(stats.lb_invocations),
      static_cast<unsigned long long>(stats.lb_pruned),
      static_cast<unsigned long long>(stats.exact_dtw_calls));
  if (stats.summary_lb_invocations > 0 ||
      stats.nodes_pruned_by_summary > 0) {
    std::printf("summaries: screened %llu edges, pruned %llu subtrees\n",
                static_cast<unsigned long long>(stats.summary_lb_invocations),
                static_cast<unsigned long long>(
                    stats.nodes_pruned_by_summary));
  }
  if (stats.tasks_executed > 0) {
    // Scheduler counters appear only for parallel searches (num_threads
    // >= 1); steal probes are a process-wide contention signal, not an
    // exact per-query count (see core/match.h).
    std::printf("scheduler: tasks %llu (%llu stolen), steal probes %llu\n",
                static_cast<unsigned long long>(stats.tasks_executed),
                static_cast<unsigned long long>(stats.tasks_stolen),
                static_cast<unsigned long long>(stats.steal_attempts));
  }
}

/// Counters plus the per-tier shape of the snapshot searched (one line for
/// a monolithic index; base + sealed + memtable when tiered) and, for
/// disk-backed indexes, the per-region buffer-manager cache behavior.
void PrintSearchStats(const Index& index, const core::SearchStats& stats) {
  PrintStatsCounters(stats);
  const auto& tiers = index.snapshot()->tiers();
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    const core::TierInfo& t = tiers[i]->info;
    std::printf("tier %zu: seqs %llu..%llu, elements %llu, nodes %llu, "
                "occurrences %llu, %llu bytes, %s%s\n",
                i, static_cast<unsigned long long>(t.first_seq),
                static_cast<unsigned long long>(t.first_seq + t.sequences),
                static_cast<unsigned long long>(t.elements),
                static_cast<unsigned long long>(t.nodes),
                static_cast<unsigned long long>(t.occurrences),
                static_cast<unsigned long long>(t.index_bytes),
                t.on_disk ? "disk" : "memory",
                t.memtable ? ", memtable" : "");
  }
  if (index.disk_tree() != nullptr) {
    const suffixtree::DiskSuffixTree& tree = *index.disk_tree();
    std::printf("io mode: %s (bundle format v%u)\n",
                storage::IoModeToString(tree.io_mode()),
                tree.format_version());
    if (tree.io_mode() == storage::IoMode::kMmap) {
      const core::MappedIoStats mapped = index.MappedStats();
      std::printf("mapped: %llu bytes (%llu resident), zero-copy — no "
                  "buffer pool on the read path\n",
                  static_cast<unsigned long long>(mapped.mapped_bytes),
                  static_cast<unsigned long long>(mapped.resident_bytes));
    } else {
      std::printf("pool config: %zu pages x 3 regions, %zu shards, %s "
                  "eviction\n",
                  index.options().disk_pool_pages, tree.pool_shards(),
                  storage::EvictionPolicyKindToString(tree.pool_eviction()));
    }
    // All-zero counters under mmap: the zero-copy path never pins.
    const suffixtree::RegionStats pool = tree.PoolStats();
    PrintPoolLine("nodes:", pool.nodes);
    PrintPoolLine("occs:", pool.occs);
    PrintPoolLine("labels:", pool.labels);
    PrintPoolLine("total:", pool.Total());
  }
}

/// Parses the buffer-manager flags into `options`. They tune the disk
/// pool, so all of them require --index (the disk-backed mode); returns
/// false (after printing) on a bad value or a missing --index.
bool ApplyPoolFlags(int argc, char** argv, IndexOptions* options) {
  const bool has_any = FlagValue(argc, argv, "--pool-pages", nullptr) !=
                           nullptr ||
                       FlagValue(argc, argv, "--pool-shards", nullptr) !=
                           nullptr ||
                       FlagValue(argc, argv, "--eviction", nullptr) !=
                           nullptr ||
                       FlagValue(argc, argv, "--readahead", nullptr) !=
                           nullptr;
  if (!has_any) return true;
  if (options->disk_path.empty()) {
    std::fprintf(stderr,
                 "--pool-pages/--pool-shards/--eviction/--readahead tune "
                 "the disk buffer manager and are only meaningful with "
                 "--index PATH\n");
    return false;
  }
  const long pages =
      FlagLong(argc, argv, "--pool-pages",
               static_cast<long>(options->disk_pool_pages));
  if (pages < 1) {
    std::fprintf(stderr, "--pool-pages must be >= 1 (got %ld)\n", pages);
    return false;
  }
  options->disk_pool_pages = static_cast<std::size_t>(pages);
  const long shards =
      FlagLong(argc, argv, "--pool-shards",
               static_cast<long>(options->disk_pool_shards));
  if (shards < 0) {
    std::fprintf(stderr, "--pool-shards must be >= 0, 0 = auto (got %ld)\n",
                 shards);
    return false;
  }
  options->disk_pool_shards = static_cast<std::size_t>(shards);
  const char* eviction = FlagValue(argc, argv, "--eviction", nullptr);
  if (eviction != nullptr &&
      !storage::ParseEvictionPolicyKind(eviction,
                                        &options->disk_eviction)) {
    std::fprintf(stderr, "--eviction must be lru or clock (got %s)\n",
                 eviction);
    return false;
  }
  const long readahead =
      FlagLong(argc, argv, "--readahead",
               static_cast<long>(options->disk_readahead_pages));
  if (readahead < 0) {
    std::fprintf(stderr, "--readahead must be >= 0 pages (got %ld)\n",
                 readahead);
    return false;
  }
  options->disk_readahead_pages = static_cast<std::size_t>(readahead);
  return true;
}

/// Parses --io mmap|buffered into `options`. Like the pool flags it only
/// makes sense for a disk-backed index; returns false (after printing) on
/// a bad value or a missing --index.
bool ApplyIoFlag(int argc, char** argv, IndexOptions* options) {
  const char* io = FlagValue(argc, argv, "--io", nullptr);
  if (io == nullptr) return true;
  if (options->disk_path.empty()) {
    std::fprintf(stderr,
                 "--io selects the disk read path and is only meaningful "
                 "with --index PATH\n");
    return false;
  }
  const StatusOr<storage::IoMode> mode = storage::ParseIoMode(io);
  if (!mode.ok()) {
    std::fprintf(stderr, "--io: %s\n", mode.status().ToString().c_str());
    return false;
  }
  options->disk_io_mode = *mode;
  return true;
}

IndexOptions OptionsFromFlags(int argc, char** argv) {
  IndexOptions options;
  const std::string kind = FlagValue(argc, argv, "--kind", "sstc");
  if (kind == "st") {
    options.kind = IndexKind::kSuffixTree;
  } else if (kind == "stc") {
    options.kind = IndexKind::kCategorized;
  } else {
    options.kind = IndexKind::kSparse;
  }
  const std::string method = FlagValue(argc, argv, "--method", "me");
  if (method == "el") {
    options.method = categorize::Method::kEqualLength;
  } else if (method == "km") {
    options.method = categorize::Method::kKMeans;
  } else {
    options.method = categorize::Method::kMaxEntropy;
  }
  options.num_categories =
      static_cast<std::size_t>(FlagLong(argc, argv, "--categories", 40));
  const char* index_path = FlagValue(argc, argv, "--index", nullptr);
  if (index_path != nullptr) options.disk_path = index_path;
  options.node_summaries = !HasFlag(argc, argv, "--no-summaries");
  return options;
}

// --no-summaries turns the node-summary screen off (build: skip building
// them; search: skip consulting them); --approx-factor F (>= 1) is the
// recall dial — 1 is exact, larger prunes more aggressively and may drop
// matches. Returns false (after printing) on a bad factor.
bool ApplySummaryFlags(int argc, char** argv,
                       core::QueryOptions* query_options) {
  query_options->use_node_summaries = !HasFlag(argc, argv, "--no-summaries");
  const double factor = FlagDouble(argc, argv, "--approx-factor", 1.0);
  if (!(factor >= 1.0)) {
    std::fprintf(stderr,
                 "--approx-factor must be >= 1 (1 = exact; got %g)\n",
                 factor);
    return false;
  }
  query_options->approx_factor = factor;
  return true;
}

// --multi D: read the database as D-dimensional multivariate sequences.
// 0 (the default, flag absent) means univariate. Returns false (after
// printing) on a bad value.
bool FlagMulti(int argc, char** argv, std::size_t* out) {
  const long raw = FlagLong(argc, argv, "--multi", 0);
  if (raw < 0) {
    std::fprintf(stderr, "--multi must be >= 1 dimensions (got %ld)\n", raw);
    return false;
  }
  *out = static_cast<std::size_t>(raw);
  return true;
}

// Reinterprets the flat univariate database as element-major `dim`-wide
// multivariate sequences. Every sequence must hold a whole number of
// elements; returns false (after printing) otherwise.
bool BuildMultiDb(const seqdb::SequenceDatabase& db, std::size_t dim,
                  std::optional<mv::MultiSequenceDatabase>* out) {
  out->emplace(dim);
  for (SeqId id = 0; id < db.size(); ++id) {
    const seqdb::Sequence& s = db.sequence(id);
    if (s.size() % dim != 0) {
      std::fprintf(stderr,
                   "--multi %zu: sequence %u has %zu values, not a "
                   "multiple of the dimension\n",
                   dim, id, s.size());
      return false;
    }
    (*out)->Add(s);
  }
  return true;
}

/// Multivariate search/k-NN (`--multi D`): grid-cell index over the
/// reinterpreted database, searched through the same core::SearchDriver as
/// the univariate modes — so --threads, --band, --no-lb and --stats carry
/// over unchanged. `k == 0` runs a range search with `epsilon`.
int RunMultiSearch(int argc, char** argv, const seqdb::SequenceDatabase& db,
                   const std::vector<Value>& query, std::size_t dim,
                   Value epsilon, std::size_t k, std::size_t limit) {
  if (query.size() % dim != 0) {
    std::fprintf(stderr,
                 "--multi %zu: the query has %zu values, not a multiple "
                 "of the dimension\n",
                 dim, query.size());
    return 1;
  }
  const std::size_t query_len = query.size() / dim;
  if (FlagValue(argc, argv, "--index", nullptr) != nullptr) {
    std::fprintf(stderr, "--multi indexes are in-memory only (no --index)\n");
    return 1;
  }
  std::optional<mv::MultiSequenceDatabase> mdb;
  if (!BuildMultiDb(db, dim, &mdb)) return 1;

  core::QueryOptions query_options;
  if (!FlagThreads(argc, argv, &query_options.num_threads)) return 1;
  if (!FlagBand(argc, argv, query_len, &query_options.band)) return 1;
  query_options.use_lower_bound = !HasFlag(argc, argv, "--no-lb");

  std::vector<Match> matches;
  if (k == 0 && HasFlag(argc, argv, "--scan")) {
    matches = mv::MultiSeqScan(*mdb, query, query_len, epsilon,
                               query_options.band);
  } else {
    mv::MultiIndexOptions options;
    const std::string kind = FlagValue(argc, argv, "--kind", "sstc");
    if (kind == "st") {
      std::fprintf(stderr,
                   "--kind st (exact values) has no multivariate analogue; "
                   "use --kind stc or sstc with --multi\n");
      return 1;
    }
    options.sparse = kind != "stc";
    if (query_options.band != 0 && options.sparse) {
      std::fprintf(stderr,
                   "--band needs a dense index (--kind stc): sparse suffix "
                   "recovery is unsound under a band\n");
      return 1;
    }
    const long categories = FlagLong(argc, argv, "--categories", 8);
    if (categories < 1) {
      std::fprintf(stderr, "--categories must be >= 1 (got %ld)\n",
                   categories);
      return 1;
    }
    options.categories_per_dim = static_cast<std::size_t>(categories);
    auto index = mv::MultiIndex::Build(&*mdb, options);
    if (!index.ok()) {
      std::fprintf(stderr, "index failed: %s\n",
                   index.status().ToString().c_str());
      return 1;
    }
    core::SearchStats stats;
    matches = k == 0 ? index->Search(query, query_len, epsilon,
                                     query_options, &stats)
                     : index->SearchKnn(query, query_len, k, query_options,
                                        &stats);
    if (HasFlag(argc, argv, "--stats")) PrintStatsCounters(stats);
  }
  if (k == 0) {
    std::printf("%zu matches (epsilon %.3f, dim %zu)\n", matches.size(),
                epsilon, dim);
  } else {
    std::printf("%zu nearest subsequences (dim %zu):\n", matches.size(),
                dim);
  }
  for (std::size_t i = 0; i < matches.size() && i < limit; ++i) {
    const Match& m = matches[i];
    std::printf("  S%u[%u..%u] len %u  D_tw %.4f\n", m.seq, m.start,
                m.start + m.len - 1, m.len, m.distance);
  }
  if (matches.size() > limit) {
    std::printf("  ... %zu more (raise --limit)\n", matches.size() - limit);
  }
  return 0;
}

int CmdGenerate(int argc, char** argv) {
  const std::string kind = FlagValue(argc, argv, "--kind", "stock");
  const char* out = FlagValue(argc, argv, "--out", nullptr);
  if (out == nullptr) return Usage();
  const auto n = static_cast<std::size_t>(FlagLong(argc, argv, "--n", 0));
  const auto len = static_cast<std::size_t>(FlagLong(argc, argv, "--len",
                                                     0));
  const auto seed =
      static_cast<std::uint64_t>(FlagLong(argc, argv, "--seed", 7));

  seqdb::SequenceDatabase db;
  if (kind == "walk") {
    datagen::RandomWalkOptions options;
    if (n != 0) options.num_sequences = n;
    if (len != 0) options.avg_length = len;
    options.seed = seed;
    db = datagen::GenerateRandomWalks(options);
  } else if (kind == "ecg") {
    datagen::EcgOptions options;
    if (n != 0) options.num_sequences = n;
    if (len != 0) options.length = len;
    options.seed = seed;
    db = datagen::GenerateEcg(options);
  } else {
    datagen::StockOptions options;
    if (n != 0) options.num_sequences = n;
    if (len != 0) options.avg_length = len;
    options.seed = seed;
    db = datagen::GenerateStocks(options);
  }
  const Status s = db.Save(out);
  if (!s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu sequences (%zu elements) to %s\n", db.size(),
              db.TotalElements(), out);
  return 0;
}

int CmdInfo(int argc, char** argv) {
  auto db = LoadDb(argc, argv);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  const auto [lo, hi] = db->ValueRange();
  std::printf("sequences:      %zu\n", db->size());
  std::printf("elements:       %zu\n", db->TotalElements());
  std::printf("avg length:     %.1f\n", db->AverageLength());
  std::printf("value range:    [%.4f, %.4f]\n", lo, hi);
  std::printf("data bytes:     %zu\n", db->DataBytes());
  return 0;
}

int CmdBuild(int argc, char** argv) {
  auto db = LoadDb(argc, argv);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  IndexOptions options = OptionsFromFlags(argc, argv);
  if (options.disk_path.empty()) {
    std::fprintf(stderr, "build requires --index PATH\n");
    return 2;
  }
  if (!ApplyPoolFlags(argc, argv, &options)) return 1;
  if (!ApplyIoFlag(argc, argv, &options)) return 1;
  auto index = Index::Build(&*db, options);
  if (!index.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  const auto& info = index->build_info();
  std::printf("kind:           %s\n", IndexKindToString(options.kind));
  std::printf("categories:     %zu\n", info.num_categories);
  std::printf("nodes:          %llu\n",
              static_cast<unsigned long long>(info.num_nodes));
  std::printf("stored suffixes:%llu (r=%.3f)\n",
              static_cast<unsigned long long>(info.stored_suffixes),
              info.compaction_ratio);
  std::printf("index bytes:    %llu\n",
              static_cast<unsigned long long>(info.index_bytes));
  std::printf("bundle:         %s.{meta,nodes,occs,labels,index}\n",
              options.disk_path.c_str());
  return 0;
}

int CmdSearch(int argc, char** argv) {
  auto db = LoadDb(argc, argv);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  const std::vector<Value> query =
      ParseQuery(FlagValue(argc, argv, "--query", nullptr));
  if (query.empty()) return Usage();
  const Value epsilon = FlagDouble(argc, argv, "--epsilon", 10.0);
  const auto limit =
      static_cast<std::size_t>(FlagLong(argc, argv, "--limit", 20));
  std::size_t multi_dim = 0;
  if (!FlagMulti(argc, argv, &multi_dim)) return 1;
  if (multi_dim != 0) {
    return RunMultiSearch(argc, argv, *db, query, multi_dim, epsilon,
                          /*k=*/0, limit);
  }

  std::vector<Match> matches;
  const bool scanned = HasFlag(argc, argv, "--scan");
  if (scanned) {
    core::SeqScanOptions scan_options;
    if (!FlagBand(argc, argv, query.size(), &scan_options.band)) return 1;
    scan_options.use_lower_bound = !HasFlag(argc, argv, "--no-lb");
    matches = core::SeqScan(*db, query, epsilon, scan_options);
  } else {
    IndexOptions options = OptionsFromFlags(argc, argv);
    if (!ApplyPoolFlags(argc, argv, &options)) return 1;
  if (!ApplyIoFlag(argc, argv, &options)) return 1;
    // Open-or-build in one expression: Index is not move-assignable (the
    // snapshot handle has exactly one sanctioned swap path), so build the
    // StatusOr once instead of reassigning it.
    StatusOr<Index> index = [&]() -> StatusOr<Index> {
      if (!options.disk_path.empty()) {
        StatusOr<Index> opened = Index::Open(&*db, options);
        if (opened.ok()) return opened;
      }
      return Index::Build(&*db, options);
    }();
    if (!index.ok()) {
      std::fprintf(stderr, "index failed: %s\n",
                   index.status().ToString().c_str());
      return 1;
    }
    core::QueryOptions query_options;
    if (!FlagThreads(argc, argv, &query_options.num_threads)) return 1;
    if (!FlagBand(argc, argv, query.size(), &query_options.band)) return 1;
    query_options.use_lower_bound = !HasFlag(argc, argv, "--no-lb");
    if (!ApplySummaryFlags(argc, argv, &query_options)) return 1;
    if (query_options.band != 0 &&
        index->options().kind == IndexKind::kSparse) {
      std::fprintf(stderr,
                   "--band needs a dense index (--kind stc or st): sparse "
                   "suffix recovery is unsound under a band\n");
      return 1;
    }
    core::SearchStats stats;
    matches = index->Search(query, epsilon, query_options, &stats);
    if (HasFlag(argc, argv, "--stats")) PrintSearchStats(*index, stats);
  }
  std::printf("%zu matches (epsilon %.3f)\n", matches.size(), epsilon);
  for (std::size_t i = 0; i < matches.size() && i < limit; ++i) {
    const Match& m = matches[i];
    std::printf("  S%u[%u..%u] len %u  D_tw %.4f\n", m.seq, m.start,
                m.start + m.len - 1, m.len, m.distance);
  }
  if (matches.size() > limit) {
    std::printf("  ... %zu more (raise --limit)\n", matches.size() - limit);
  }
  return 0;
}

int CmdKnn(int argc, char** argv) {
  auto db = LoadDb(argc, argv);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  const std::vector<Value> query =
      ParseQuery(FlagValue(argc, argv, "--query", nullptr));
  if (query.empty()) return Usage();
  const auto k = static_cast<std::size_t>(FlagLong(argc, argv, "--k", 5));
  std::size_t multi_dim = 0;
  if (!FlagMulti(argc, argv, &multi_dim)) return 1;
  if (multi_dim != 0) {
    if (k == 0) {
      std::fprintf(stderr, "--k must be >= 1\n");
      return 1;
    }
    return RunMultiSearch(argc, argv, *db, query, multi_dim, /*epsilon=*/0.0,
                          k, /*limit=*/k);
  }
  IndexOptions options = OptionsFromFlags(argc, argv);
  if (!ApplyPoolFlags(argc, argv, &options)) return 1;
  if (!ApplyIoFlag(argc, argv, &options)) return 1;
  auto index = Index::Build(&*db, options);
  if (!index.ok()) {
    std::fprintf(stderr, "index failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  core::QueryOptions query_options;
  if (!FlagThreads(argc, argv, &query_options.num_threads)) return 1;
  if (!FlagBand(argc, argv, query.size(), &query_options.band)) return 1;
  query_options.use_lower_bound = !HasFlag(argc, argv, "--no-lb");
  if (!ApplySummaryFlags(argc, argv, &query_options)) return 1;
  if (query_options.band != 0 &&
      index->options().kind == IndexKind::kSparse) {
    std::fprintf(stderr,
                 "--band needs a dense index (--kind stc or st): sparse "
                 "suffix recovery is unsound under a band\n");
    return 1;
  }
  core::SearchStats stats;
  const std::vector<Match> knn =
      index->SearchKnn(query, k, query_options, &stats);
  if (HasFlag(argc, argv, "--stats")) PrintSearchStats(*index, stats);
  std::printf("%zu nearest subsequences:\n", knn.size());
  for (const Match& m : knn) {
    std::printf("  S%u[%u..%u] len %u  D_tw %.4f\n", m.seq, m.start,
                m.start + m.len - 1, m.len, m.distance);
  }
  return 0;
}

int CmdDot(int argc, char** argv) {
  auto db = LoadDb(argc, argv);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  IndexOptions options = OptionsFromFlags(argc, argv);
  options.disk_path.clear();
  options.num_categories =
      static_cast<std::size_t>(FlagLong(argc, argv, "--categories", 8));
  // Build a small in-memory categorized tree and dump it. (Reaching the
  // tree requires the suffixtree API directly.)
  const std::vector<Value> values = categorize::CollectValues(*db);
  auto alphabet = categorize::Build(options.method, values,
                                    options.num_categories, options.seed);
  if (!alphabet.ok()) {
    std::fprintf(stderr, "%s\n", alphabet.status().ToString().c_str());
    return 1;
  }
  categorize::CategorizedDatabase converted =
      categorize::ConvertDatabase(*db, &*alphabet);
  const suffixtree::SymbolDatabase symbols(std::move(converted.sequences));
  suffixtree::BuildOptions build;
  build.sparse = options.kind == IndexKind::kSparse;
  const suffixtree::SuffixTree tree = BuildSuffixTree(symbols, build);
  suffixtree::DotOptions dot;
  dot.max_nodes =
      static_cast<std::size_t>(FlagLong(argc, argv, "--max-nodes", 64));
  std::fputs(suffixtree::ToDot(tree, dot).c_str(), stdout);
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (const char* simd = FlagValue(argc, argv, "--simd", nullptr)) {
    if (!dtw::simd::SetBackend(simd)) {
      std::fprintf(stderr, "--simd %s: unknown or unavailable backend "
                   "(available:", simd);
      for (const std::string& b : dtw::simd::AvailableBackends()) {
        std::fprintf(stderr, " %s", b.c_str());
      }
      std::fprintf(stderr, ")\n");
      return 2;
    }
  }
  const std::string cmd = argv[1];
  if (cmd == "generate") return CmdGenerate(argc, argv);
  if (cmd == "info") return CmdInfo(argc, argv);
  if (cmd == "build") return CmdBuild(argc, argv);
  if (cmd == "search") return CmdSearch(argc, argv);
  if (cmd == "knn") return CmdKnn(argc, argv);
  if (cmd == "dot") return CmdDot(argc, argv);
  return Usage();
}

}  // namespace
}  // namespace tswarp

int main(int argc, char** argv) { return tswarp::Main(argc, argv); }
