// tswarpd: serves one tswarp index over HTTP/JSON.
//
//   tswarpd_cli serve DB [--port P] [--address A] [--kind st|stc|sstc]
//       [--categories C] [--index PATH] [--io mmap|buffered] [--queue N]
//       [--batch N] [--search-threads T] [--conn-threads T] [--streaming]
//       [--memtable N] [--sealed N] [--smoke]
//   tswarpd_cli append VALUES [--port P] [--address A]
//
// The index is built (or, with --index, reopened from a persisted bundle)
// at startup; queries then run concurrently through the admission queue
// and coalescing dispatcher (see docs/server.md). With --streaming the
// index is wrapped in a core::TieredIndex, enabling POST /append and the
// /continuous/* endpoints (see docs/streaming.md). SIGTERM/SIGINT trigger
// a graceful drain: in-flight and already-admitted searches are answered,
// then the process exits 0.
//
// `append` is the matching client: it POSTs one comma-separated sequence
// to a running --streaming server and prints the assigned global seq id.
//
// --smoke starts on an ephemeral port, runs a self-test over a real
// socket (healthz, one search, stats, and with --streaming one append),
// drains, and exits — the CI hook.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/types.h"
#include "core/index.h"
#include "core/tiered_index.h"
#include "seqdb/sequence_database.h"
#include "server/client.h"
#include "server/index_handle.h"
#include "server/server.h"

namespace tswarp {
namespace {

using core::Index;
using core::IndexKind;
using core::IndexOptions;

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

const char* FlagValue(int argc, char** argv, const char* flag,
                      const char* fallback) {
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

long FlagLong(int argc, char** argv, const char* flag, long fallback) {
  const char* v = FlagValue(argc, argv, flag, nullptr);
  return v == nullptr ? fallback : std::atol(v);
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

int Usage() {
  std::fprintf(stderr,
               "usage: tswarpd_cli serve DB [--port P] [--address A] "
               "[--kind st|stc|sstc] [--categories C] [--index PATH] "
               "[--io mmap|buffered] [--queue N] [--batch N] "
               "[--search-threads T] [--conn-threads T] [--streaming] "
               "[--memtable N] [--sealed N] [--no-summaries] [--smoke]\n"
               "       tswarpd_cli append VALUES [--port P] [--address A]\n"
               "  VALUES is one comma-separated sequence, e.g. 12,14,13,15\n");
  return 2;
}

/// The smoke self-test: a full client round trip over the real socket.
int RunSmoke(server::Server& srv, bool streaming) {
  StatusOr<server::HttpClient> client =
      server::HttpClient::Connect("127.0.0.1", srv.port());
  if (!client.ok()) {
    std::fprintf(stderr, "smoke: connect failed: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }
  StatusOr<server::ClientResponse> health = client->Get("/healthz");
  if (!health.ok() || health->status != 200) {
    std::fprintf(stderr, "smoke: /healthz failed\n");
    return 1;
  }
  StatusOr<server::ClientResponse> search = client->Post(
      "/search", "{\"query\":[50,51,52,53],\"epsilon\":8}");
  if (!search.ok() || search->status != 200) {
    std::fprintf(stderr, "smoke: /search failed (status %d)\n",
                 search.ok() ? search->status : -1);
    return 1;
  }
  if (streaming) {
    StatusOr<server::ClientResponse> appended = client->Post(
        "/append", "{\"values\":[50,51,52,53,54,55,56,57]}");
    if (!appended.ok() || appended->status != 200) {
      std::fprintf(stderr, "smoke: /append failed (status %d)\n",
                   appended.ok() ? appended->status : -1);
      return 1;
    }
  }
  StatusOr<server::ClientResponse> stats = client->Get("/stats");
  if (!stats.ok() || stats->status != 200) {
    std::fprintf(stderr, "smoke: /stats failed\n");
    return 1;
  }
  std::printf("smoke ok: port %d, search body %zu bytes\n", srv.port(),
              search->body.size());
  return 0;
}

/// `append`: POSTs one sequence to a running --streaming server.
int Append(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::vector<Value> values;
  const char* p = argv[2];
  char* end = nullptr;
  while (*p != '\0') {
    const double v = std::strtod(p, &end);
    if (end == p) break;
    values.push_back(v);
    p = (*end == ',') ? end + 1 : end;
  }
  if (values.empty()) {
    std::fprintf(stderr, "append: could not parse any values from '%s'\n",
                 argv[2]);
    return 2;
  }
  const char* address = FlagValue(argc, argv, "--address", "127.0.0.1");
  const int port = static_cast<int>(FlagLong(argc, argv, "--port", 8787));
  StatusOr<server::HttpClient> client =
      server::HttpClient::Connect(address, port);
  if (!client.ok()) {
    std::fprintf(stderr, "append: connect failed: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }
  std::string body = "{\"values\":[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) body += ',';
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", values[i]);
    body += buf;
  }
  body += "]}";
  StatusOr<server::ClientResponse> response = client->Post("/append", body);
  if (!response.ok()) {
    std::fprintf(stderr, "append: request failed: %s\n",
                 response.status().ToString().c_str());
    return 1;
  }
  if (response->status != 200) {
    std::fprintf(stderr, "append: server returned %d: %s\n", response->status,
                 response->body.c_str());
    return 1;
  }
  std::printf("%s\n", response->body.c_str());
  return 0;
}

int Serve(int argc, char** argv) {
  if (argc < 3) return Usage();
  StatusOr<seqdb::SequenceDatabase> db =
      seqdb::SequenceDatabase::Load(argv[2]);
  if (!db.ok()) {
    std::fprintf(stderr, "load failed: %s\n", db.status().ToString().c_str());
    return 1;
  }

  IndexOptions options;
  const std::string kind = FlagValue(argc, argv, "--kind", "sstc");
  if (kind == "st") {
    options.kind = IndexKind::kSuffixTree;
  } else if (kind == "stc") {
    options.kind = IndexKind::kCategorized;
  } else {
    options.kind = IndexKind::kSparse;
  }
  options.num_categories = static_cast<std::size_t>(
      FlagLong(argc, argv, "--categories", 64));
  options.node_summaries = !HasFlag(argc, argv, "--no-summaries");
  const char* index_path = FlagValue(argc, argv, "--index", nullptr);
  if (index_path != nullptr) options.disk_path = index_path;
  if (const char* io = FlagValue(argc, argv, "--io", nullptr)) {
    if (index_path == nullptr) {
      std::fprintf(stderr,
                   "--io selects the disk read path and needs --index "
                   "PATH\n");
      return 2;
    }
    const StatusOr<storage::IoMode> mode = storage::ParseIoMode(io);
    if (!mode.ok()) {
      std::fprintf(stderr, "--io: %s\n", mode.status().ToString().c_str());
      return 2;
    }
    options.disk_io_mode = *mode;
  }

  // With a persisted bundle, prefer reopening it; fall back to building
  // (which persists for the next start). One expression because Index is
  // not move-assignable.
  StatusOr<Index> index = [&]() -> StatusOr<Index> {
    if (index_path != nullptr) {
      StatusOr<Index> opened = Index::Open(&*db, options);
      if (opened.ok()) return opened;
    }
    return Index::Build(&*db, options);
  }();
  if (!index.ok()) {
    std::fprintf(stderr, "index failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }

  // --streaming wraps the base index in a TieredIndex so /append and the
  // continuous-query endpoints are live; otherwise the handle serves the
  // static snapshot.
  const bool streaming = HasFlag(argc, argv, "--streaming");
  std::shared_ptr<core::TieredIndex> tiered;
  if (streaming) {
    core::TieredOptions tiered_options;
    tiered_options.index = options;
    tiered_options.memtable_max_sequences = static_cast<std::size_t>(
        FlagLong(argc, argv, "--memtable", 8));
    tiered_options.max_sealed_tiers = static_cast<std::size_t>(
        FlagLong(argc, argv, "--sealed", 2));
    tiered = core::TieredIndex::FromIndex(std::move(*index), tiered_options);
  }
  server::IndexHandle handle =
      streaming ? server::IndexHandle(tiered)
                : server::IndexHandle(std::move(*index));

  server::ServerOptions server_options;
  server_options.address = FlagValue(argc, argv, "--address", "127.0.0.1");
  const bool smoke = HasFlag(argc, argv, "--smoke");
  server_options.port =
      smoke ? 0 : static_cast<int>(FlagLong(argc, argv, "--port", 8787));
  server_options.queue_capacity = static_cast<std::size_t>(
      FlagLong(argc, argv, "--queue", 64));
  server_options.max_batch =
      static_cast<std::size_t>(FlagLong(argc, argv, "--batch", 8));
  server_options.search_threads = static_cast<std::size_t>(
      FlagLong(argc, argv, "--search-threads", 0));
  server_options.connection_threads = static_cast<std::size_t>(
      FlagLong(argc, argv, "--conn-threads", 4));

  StatusOr<std::unique_ptr<server::Server>> srv =
      server::Server::Start(&handle, server_options);
  if (!srv.ok()) {
    std::fprintf(stderr, "start failed: %s\n",
                 srv.status().ToString().c_str());
    return 1;
  }

  if (smoke) {
    const int rc = RunSmoke(**srv, streaming);
    (*srv)->Shutdown();
    return rc;
  }

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  std::printf("tswarpd serving %s (%s%s) on %s:%d\n", argv[2], kind.c_str(),
              streaming ? ", streaming" : "",
              server_options.address.c_str(), (*srv)->port());
  std::fflush(stdout);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("draining...\n");
  (*srv)->Shutdown();
  const server::ServerCounters c = (*srv)->Counters();
  std::printf("served %llu requests (%llu searches, %llu rejected)\n",
              static_cast<unsigned long long>(c.requests),
              static_cast<unsigned long long>(c.completed),
              static_cast<unsigned long long>(c.rejected));
  return 0;
}

}  // namespace
}  // namespace tswarp

int main(int argc, char** argv) {
  if (argc < 2) return tswarp::Usage();
  if (std::strcmp(argv[1], "serve") == 0) return tswarp::Serve(argc, argv);
  if (std::strcmp(argv[1], "append") == 0) return tswarp::Append(argc, argv);
  return tswarp::Usage();
}
