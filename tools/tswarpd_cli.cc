// tswarpd: serves one tswarp index over HTTP/JSON.
//
//   tswarpd_cli serve DB [--port P] [--address A] [--kind st|stc|sstc]
//       [--categories C] [--index PATH] [--queue N] [--batch N]
//       [--search-threads T] [--conn-threads T] [--smoke]
//
// The index is built (or, with --index, reopened from a persisted bundle)
// at startup; queries then run concurrently through the admission queue
// and coalescing dispatcher (see docs/server.md). SIGTERM/SIGINT trigger
// a graceful drain: in-flight and already-admitted searches are answered,
// then the process exits 0.
//
// --smoke starts on an ephemeral port, runs a self-test over a real
// socket (healthz, one search, stats), drains, and exits — the CI hook.

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/index.h"
#include "seqdb/sequence_database.h"
#include "server/client.h"
#include "server/index_handle.h"
#include "server/server.h"

namespace tswarp {
namespace {

using core::Index;
using core::IndexKind;
using core::IndexOptions;

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

const char* FlagValue(int argc, char** argv, const char* flag,
                      const char* fallback) {
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

long FlagLong(int argc, char** argv, const char* flag, long fallback) {
  const char* v = FlagValue(argc, argv, flag, nullptr);
  return v == nullptr ? fallback : std::atol(v);
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

int Usage() {
  std::fprintf(stderr,
               "usage: tswarpd_cli serve DB [--port P] [--address A] "
               "[--kind st|stc|sstc] [--categories C] [--index PATH] "
               "[--queue N] [--batch N] [--search-threads T] "
               "[--conn-threads T] [--smoke]\n");
  return 2;
}

/// The smoke self-test: a full client round trip over the real socket.
int RunSmoke(server::Server& srv) {
  StatusOr<server::HttpClient> client =
      server::HttpClient::Connect("127.0.0.1", srv.port());
  if (!client.ok()) {
    std::fprintf(stderr, "smoke: connect failed: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }
  StatusOr<server::ClientResponse> health = client->Get("/healthz");
  if (!health.ok() || health->status != 200) {
    std::fprintf(stderr, "smoke: /healthz failed\n");
    return 1;
  }
  StatusOr<server::ClientResponse> search = client->Post(
      "/search", "{\"query\":[50,51,52,53],\"epsilon\":8}");
  if (!search.ok() || search->status != 200) {
    std::fprintf(stderr, "smoke: /search failed (status %d)\n",
                 search.ok() ? search->status : -1);
    return 1;
  }
  StatusOr<server::ClientResponse> stats = client->Get("/stats");
  if (!stats.ok() || stats->status != 200) {
    std::fprintf(stderr, "smoke: /stats failed\n");
    return 1;
  }
  std::printf("smoke ok: port %d, search body %zu bytes\n", srv.port(),
              search->body.size());
  return 0;
}

int Serve(int argc, char** argv) {
  if (argc < 3) return Usage();
  StatusOr<seqdb::SequenceDatabase> db =
      seqdb::SequenceDatabase::Load(argv[2]);
  if (!db.ok()) {
    std::fprintf(stderr, "load failed: %s\n", db.status().ToString().c_str());
    return 1;
  }

  IndexOptions options;
  const std::string kind = FlagValue(argc, argv, "--kind", "sstc");
  if (kind == "st") {
    options.kind = IndexKind::kSuffixTree;
  } else if (kind == "stc") {
    options.kind = IndexKind::kCategorized;
  } else {
    options.kind = IndexKind::kSparse;
  }
  options.num_categories = static_cast<std::size_t>(
      FlagLong(argc, argv, "--categories", 64));
  const char* index_path = FlagValue(argc, argv, "--index", nullptr);
  if (index_path != nullptr) options.disk_path = index_path;

  // With a persisted bundle, prefer reopening it; fall back to building
  // (which persists for the next start).
  StatusOr<Index> index = Status::NotFound("no index yet");
  if (index_path != nullptr) index = Index::Open(&*db, options);
  if (!index.ok()) index = Index::Build(&*db, options);
  if (!index.ok()) {
    std::fprintf(stderr, "index failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  server::IndexHandle handle(std::move(*index));

  server::ServerOptions server_options;
  server_options.address = FlagValue(argc, argv, "--address", "127.0.0.1");
  const bool smoke = HasFlag(argc, argv, "--smoke");
  server_options.port =
      smoke ? 0 : static_cast<int>(FlagLong(argc, argv, "--port", 8787));
  server_options.queue_capacity = static_cast<std::size_t>(
      FlagLong(argc, argv, "--queue", 64));
  server_options.max_batch =
      static_cast<std::size_t>(FlagLong(argc, argv, "--batch", 8));
  server_options.search_threads = static_cast<std::size_t>(
      FlagLong(argc, argv, "--search-threads", 0));
  server_options.connection_threads = static_cast<std::size_t>(
      FlagLong(argc, argv, "--conn-threads", 4));

  StatusOr<std::unique_ptr<server::Server>> srv =
      server::Server::Start(&handle, server_options);
  if (!srv.ok()) {
    std::fprintf(stderr, "start failed: %s\n",
                 srv.status().ToString().c_str());
    return 1;
  }

  if (smoke) {
    const int rc = RunSmoke(**srv);
    (*srv)->Shutdown();
    return rc;
  }

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  std::printf("tswarpd serving %s (%s) on %s:%d\n", argv[2], kind.c_str(),
              server_options.address.c_str(), (*srv)->port());
  std::fflush(stdout);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("draining...\n");
  (*srv)->Shutdown();
  const server::ServerCounters c = (*srv)->Counters();
  std::printf("served %llu requests (%llu searches, %llu rejected)\n",
              static_cast<unsigned long long>(c.requests),
              static_cast<unsigned long long>(c.completed),
              static_cast<unsigned long long>(c.rejected));
  return 0;
}

}  // namespace
}  // namespace tswarp

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "serve") != 0) {
    return tswarp::Usage();
  }
  return tswarp::Serve(argc, argv);
}
