// ECG monitor: the paper's medical motivation — "finding patients whose
// lung lesions have similar evolution characteristics" / matching of
// electrocardiograms. A reference beat morphology is searched across
// recordings whose instantaneous heart rates differ; the time warping
// distance matches the same morphology at 60 or 90 bpm, where a
// fixed-rate (Euclidean) template would fail.
//
//   ./ecg_monitor

#include <cstdio>
#include <vector>

#include "core/index.h"
#include "core/seq_scan.h"
#include "datagen/generators.h"
#include "dtw/dtw.h"

using tswarp::Pos;
using tswarp::SeqId;
using tswarp::Value;
using tswarp::core::Index;
using tswarp::core::IndexOptions;
using tswarp::core::Match;

int main() {
  // 1. A ward of 50 synthetic ECG channels with varying rates and noise.
  tswarp::datagen::EcgOptions ecg_options;
  ecg_options.num_sequences = 50;
  ecg_options.length = 600;
  ecg_options.period_jitter = 6.0;  // Rates wander beat to beat.
  tswarp::seqdb::SequenceDatabase ward =
      tswarp::datagen::GenerateEcg(ecg_options);
  std::printf("ward: %zu channels x %zu samples\n", ward.size(),
              ecg_options.length);

  // 2. The reference morphology: one clean beat cut from channel 0.
  //    (In practice a cardiologist would mark this template.)
  const tswarp::seqdb::Sequence& channel0 = ward.sequence(0);
  Pos peak = 0;
  for (Pos p = 1; p + 1 < channel0.size(); ++p) {
    if (channel0[p] > channel0[peak]) peak = p;
  }
  const Pos beat_start = peak > 6 ? peak - 6 : 0;
  const Pos beat_len = 16;
  tswarp::seqdb::Sequence beat(
      channel0.begin() + beat_start,
      channel0.begin() + std::min<std::size_t>(beat_start + beat_len,
                                               channel0.size()));
  std::printf("template: %zu samples around the tallest R-peak of "
              "channel 0\n", beat.size());

  // 3. Index the ward with a dense categorized tree (ST_C) — the sparse
  //    variant works too; dense keeps this example's stats simple.
  IndexOptions options;
  options.kind = tswarp::core::IndexKind::kSparse;
  options.num_categories = 48;
  auto index = Index::Build(&ward, options);
  if (!index.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }

  // 4. Find every beat in the ward similar to the template. The epsilon
  //    budget allows per-sample deviations plus rate differences.
  const Value epsilon = 40.0;
  tswarp::core::SearchStats stats;
  const std::vector<Match> matches = index->Search(beat, epsilon, {},
                                                   &stats);

  // Count detected beats per channel (merge overlapping windows).
  std::vector<int> beats_per_channel(ward.size(), 0);
  std::vector<Pos> last_end(ward.size(), 0);
  for (const Match& m : matches) {
    if (beats_per_channel[m.seq] == 0 || m.start > last_end[m.seq]) {
      ++beats_per_channel[m.seq];
      last_end[m.seq] = m.start + m.len;
    } else {
      last_end[m.seq] = std::max(last_end[m.seq], m.start + m.len);
    }
  }
  int channels_with_beats = 0;
  int total_beats = 0;
  for (std::size_t c = 0; c < ward.size(); ++c) {
    if (beats_per_channel[c] > 0) ++channels_with_beats;
    total_beats += beats_per_channel[c];
  }
  std::printf("\nepsilon %.0f: %zu matching windows -> ~%d distinct beats "
              "on %d/%zu channels\n", epsilon, matches.size(), total_beats,
              channels_with_beats, ward.size());
  std::printf("search work: %llu nodes, %llu rows, %llu exact "
              "verifications\n",
              static_cast<unsigned long long>(stats.nodes_visited),
              static_cast<unsigned long long>(stats.rows_pushed),
              static_cast<unsigned long long>(stats.exact_dtw_calls));

  // 5. Show that warping is doing real work: the best match per channel
  //    varies in window length (different heart rates), yet all are close
  //    in D_tw.
  std::printf("\nbest match per channel (first 10 channels):\n");
  std::printf("%-9s %-12s %-6s %-8s\n", "channel", "window", "len", "D_tw");
  for (SeqId c = 0; c < 10 && c < ward.size(); ++c) {
    const Match* best = nullptr;
    for (const Match& m : matches) {
      if (m.seq == c && (best == nullptr || m.distance < best->distance)) {
        best = &m;
      }
    }
    if (best == nullptr) {
      std::printf("C%-8u (no beat under epsilon)\n", c);
    } else {
      std::printf("C%-8u [%4u..%4u] %-6u %.2f\n", c, best->start,
                  best->start + best->len - 1, best->len, best->distance);
    }
  }
  return 0;
}
