// Stock screener: the paper's motivating scenario — "detect stocks that
// have similar growth patterns" even when they are sampled differently or
// evolve at different speeds.
//
// A reference pattern (a two-phase rally) is searched against a database
// of daily closing prices. Because the similarity measure is the time
// warping distance, the screener finds rallies that unfold over 15 days as
// well as ones stretched over 30, which no fixed-length Euclidean screen
// could do.
//
//   ./stock_screener [epsilon]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "core/index.h"
#include "datagen/generators.h"
#include "dtw/dtw.h"

using tswarp::SeqId;
using tswarp::Value;
using tswarp::core::Index;
using tswarp::core::IndexOptions;
using tswarp::core::Match;

namespace {

// The pattern to screen for: consolidation, breakout, consolidation,
// second leg up (normalized around a $50 price level).
tswarp::seqdb::Sequence RallyPattern() {
  return {50, 50, 50.5, 50.5, 52, 54, 56, 56, 56.5, 56.5, 58, 60, 62, 63};
}

}  // namespace

int main(int argc, char** argv) {
  const Value epsilon = argc > 1 ? std::atof(argv[1]) : 18.0;

  // 1. Build the market: 545 synthetic stocks, ~1 year of daily closes.
  tswarp::seqdb::SequenceDatabase market =
      tswarp::datagen::GenerateStocks({});
  std::printf("market: %zu stocks, %zu daily closes\n", market.size(),
              market.TotalElements());

  // 2. Plant three disguised copies of the rally so the screener has
  //    something real to find: one verbatim, one time-stretched (every
  //    element duplicated = half the "speed"), one with noise.
  const tswarp::seqdb::Sequence rally = RallyPattern();
  {
    tswarp::seqdb::Sequence verbatim = rally;
    tswarp::seqdb::Sequence stretched;
    for (Value v : rally) {
      stretched.push_back(v);
      stretched.push_back(v);  // Same shape, twice as slow.
    }
    tswarp::seqdb::Sequence noisy = rally;
    for (std::size_t i = 0; i < noisy.size(); ++i) {
      noisy[i] += (i % 2 == 0) ? 0.5 : -0.5;
    }
    // Embed each into a fresh random-walk host sequence.
    tswarp::datagen::StockOptions host_options;
    host_options.num_sequences = 3;
    host_options.seed = 99;
    tswarp::seqdb::SequenceDatabase hosts =
        tswarp::datagen::GenerateStocks(host_options);
    for (int i = 0; i < 3; ++i) {
      tswarp::seqdb::Sequence s = hosts.sequence(static_cast<tswarp::SeqId>(
          i));
      const tswarp::seqdb::Sequence& insert =
          i == 0 ? verbatim : (i == 1 ? stretched : noisy);
      std::copy(insert.begin(), insert.end(), s.begin() + 40);
      std::printf("planted %s rally in stock %zu at day 40 (len %zu)\n",
                  i == 0 ? "verbatim" : (i == 1 ? "2x-stretched" : "noisy"),
                  market.size(), insert.size());
      market.Add(std::move(s));
    }
  }

  // 3. Index with the paper's best configuration: sparse suffix tree over
  //    maximum-entropy categories.
  IndexOptions options;
  options.kind = tswarp::core::IndexKind::kSparse;
  options.method = tswarp::categorize::Method::kMaxEntropy;
  options.num_categories = 60;
  auto index = Index::Build(&market, options);
  if (!index.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  std::printf("index: %.1f MB, compaction r=%.2f\n\n",
              index->build_info().index_bytes / (1024.0 * 1024.0),
              index->build_info().compaction_ratio);

  // 4. Screen. Keep the best (lowest-distance) window per stock.
  tswarp::core::SearchStats stats;
  const std::vector<Match> matches = index->Search(rally, epsilon, {},
                                                   &stats);
  std::map<tswarp::SeqId, Match> best;
  for (const Match& m : matches) {
    auto it = best.find(m.seq);
    if (it == best.end() || m.distance < it->second.distance) {
      best[m.seq] = m;
    }
  }
  std::printf("epsilon %.1f: %zu matching windows across %zu stocks "
              "(%llu candidates verified)\n\n",
              epsilon, matches.size(), best.size(),
              static_cast<unsigned long long>(stats.candidates));
  std::printf("%-8s %-10s %-8s %-10s\n", "stock", "window", "days",
              "D_tw");
  int shown = 0;
  for (const auto& [seq, m] : best) {
    std::printf("S%-7u [%3u..%3u] %-8u %.2f\n", seq, m.start,
                m.start + m.len - 1, m.len, m.distance);
    if (++shown >= 15) break;
  }
  std::printf("...\nplanted stocks:\n");
  for (SeqId seq = static_cast<SeqId>(market.size()) - 3;
       seq < market.size(); ++seq) {
    auto it = best.find(seq);
    if (it == best.end()) {
      std::printf("S%-7u (missed!)\n", seq);
    } else {
      const Match& m = it->second;
      std::printf("S%-7u [%3u..%3u] %-8u %.2f\n", seq, m.start,
                  m.start + m.len - 1, m.len, m.distance);
    }
  }
  std::printf("\nNote the planted stocks (%zu, %zu, %zu): the 2x-stretched "
              "copy matches with a ~%zu-day window — time warping aligns "
              "patterns of different speeds.\n",
              market.size() - 3, market.size() - 2, market.size() - 1,
              2 * rally.size());
  return 0;
}
