// Quickstart: build a sparse categorized suffix-tree index (SST_C) over a
// small stock-like database and run a time-warping subsequence query.
//
//   ./quickstart
//
// Walks through the full public API: data generation, index construction,
// searching, and result interpretation.

#include <cstdio>

#include "core/index.h"
#include "core/seq_scan.h"
#include "datagen/generators.h"

using tswarp::Value;
using tswarp::core::Index;
using tswarp::core::IndexOptions;
using tswarp::core::Match;
using tswarp::core::SearchStats;

int main() {
  // 1. A database of 50 synthetic daily-closing-price sequences.
  tswarp::datagen::StockOptions data_options;
  data_options.num_sequences = 50;
  data_options.avg_length = 120;
  data_options.seed = 2026;
  tswarp::seqdb::SequenceDatabase db =
      tswarp::datagen::GenerateStocks(data_options);
  std::printf("database: %zu sequences, %zu elements, avg length %.1f\n",
              db.size(), db.TotalElements(), db.AverageLength());

  // 2. Build the paper's SST_C index: maximum-entropy categorization with
  //    32 categories, sparse suffix storage.
  IndexOptions options;
  options.kind = tswarp::core::IndexKind::kSparse;
  options.method = tswarp::categorize::Method::kMaxEntropy;
  options.num_categories = 32;
  auto index_or = Index::Build(&db, options);
  if (!index_or.ok()) {
    std::printf("index build failed: %s\n",
                index_or.status().ToString().c_str());
    return 1;
  }
  const Index& index = *index_or;
  const auto& info = index.build_info();
  std::printf(
      "index: %llu nodes, %llu stored suffixes (compaction r=%.2f), "
      "%.1f KB\n",
      static_cast<unsigned long long>(info.num_nodes),
      static_cast<unsigned long long>(info.stored_suffixes),
      info.compaction_ratio,
      static_cast<double>(info.index_bytes) / 1024.0);

  // 3. Query: a 12-day pattern cut from one of the sequences, perturbed.
  //    Time warping lets it match subsequences of *different lengths*.
  tswarp::seqdb::Sequence query(db.sequence(7).begin() + 30,
                                db.sequence(7).begin() + 42);
  for (std::size_t i = 0; i < query.size(); i += 3) query[i] += 0.4;

  const Value epsilon = 8.0;
  SearchStats stats;
  const std::vector<Match> matches = index.Search(query, epsilon, {}, &stats);

  std::printf("query length %zu, epsilon %.1f -> %zu matches\n", query.size(),
              epsilon, matches.size());
  std::printf(
      "search visited %llu nodes, pushed %llu table rows, "
      "verified %llu candidates\n",
      static_cast<unsigned long long>(stats.nodes_visited),
      static_cast<unsigned long long>(stats.rows_pushed),
      static_cast<unsigned long long>(stats.candidates));
  for (std::size_t i = 0; i < matches.size() && i < 8; ++i) {
    const Match& m = matches[i];
    std::printf("  S%-3u [%4u .. %4u]  (len %2u)  D_tw = %.3f\n", m.seq,
                m.start, m.start + m.len - 1, m.len, m.distance);
  }

  // 4. Sanity: sequential scanning returns the same answer set (the index
  //    guarantees no false dismissals).
  const std::vector<Match> scan =
      tswarp::core::SeqScan(db, query, epsilon);
  std::printf("sequential scan agrees: %s (%zu matches)\n",
              scan.size() == matches.size() ? "yes" : "NO", scan.size());
  return 0;
}
