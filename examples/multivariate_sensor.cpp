// Multivariate sensor search: the paper's Section 8 extension to
// "sequences of multivariate numeric values" via multi-dimensional
// categorization. A 2-D trajectory pattern (e.g. a machine's
// temperature/vibration signature before a fault) is searched across a
// fleet of sensor streams under the multivariate time warping distance.
//
//   ./multivariate_sensor

#include <cstdio>
#include <vector>

#include "common/random.h"
#include "multivariate/multi_index.h"

using tswarp::Pos;
using tswarp::SeqId;
using tswarp::Value;
using tswarp::core::Match;
using tswarp::mv::MultiIndex;
using tswarp::mv::MultiIndexOptions;
using tswarp::mv::MultiSequenceDatabase;

namespace {

// The fault signature: temperature ramps while vibration spikes twice.
// Flattened element-major: (temp, vib) per timestep.
std::vector<Value> FaultSignature() {
  return {
      // temp, vib
      40, 1.0,  41, 1.1,  43, 2.5,  46, 1.2,  50, 1.3,
      55, 3.5,  61, 3.8,  68, 1.5,  76, 1.6,  85, 1.8,
  };
}

}  // namespace

int main() {
  const std::size_t kDim = 2;
  tswarp::Rng rng(2026);

  // 1. A fleet of 40 machines, each with a 300-step (temp, vib) stream.
  MultiSequenceDatabase fleet(kDim);
  for (int machine = 0; machine < 40; ++machine) {
    std::vector<Value> stream;
    Value temp = rng.Uniform(35, 55);
    Value vib = rng.Uniform(0.8, 1.5);
    for (int t = 0; t < 300; ++t) {
      temp += rng.Gaussian(0, 0.8);
      vib = std::max(0.1, vib + rng.Gaussian(0, 0.15));
      stream.push_back(temp);
      stream.push_back(vib);
    }
    fleet.Add(std::move(stream));
  }

  // 2. Plant the fault signature into two machines — once verbatim, once
  //    slowed to half speed (every element duplicated).
  const std::vector<Value> fault = FaultSignature();
  const std::size_t fault_len = fault.size() / kDim;
  {
    std::vector<Value> host1(fleet.sequence(0));
    std::copy(fault.begin(), fault.end(),
              host1.begin() + 100 * static_cast<long>(kDim));
    fleet.Add(std::move(host1));
    std::vector<Value> slowed;
    for (std::size_t e = 0; e < fault_len; ++e) {
      for (int rep = 0; rep < 2; ++rep) {
        slowed.push_back(fault[e * kDim]);
        slowed.push_back(fault[e * kDim + 1]);
      }
    }
    std::vector<Value> host2(fleet.sequence(1));
    std::copy(slowed.begin(), slowed.end(),
              host2.begin() + 150 * static_cast<long>(kDim));
    fleet.Add(std::move(host2));
  }
  std::printf("fleet: %zu machines, %zu elements, dim %zu "
              "(fault planted in machines %zu and %zu)\n",
              fleet.size(), fleet.TotalElements(), fleet.dim(),
              fleet.size() - 2, fleet.size() - 1);

  // 3. Build the multivariate index: an 8x8 max-entropy grid over
  //    (temp, vib), sparse suffix tree over the grid cells.
  MultiIndexOptions options;
  options.categories_per_dim = 8;
  options.sparse = true;
  auto index = MultiIndex::Build(&fleet, options);
  if (!index.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  std::printf("grid: %zu cells; index %.1f KB\n",
              index->grid().NumCells(),
              static_cast<double>(index->IndexBytes()) / 1024.0);

  // 4. Search. The epsilon budget covers noise plus warping slack.
  const Value epsilon = 25.0;
  tswarp::core::SearchStats stats;
  const std::vector<Match> matches = index->Search(
      fault, fault_len, epsilon, tswarp::core::QueryOptions{}, &stats);
  std::printf("\nepsilon %.0f: %zu matching windows "
              "(%llu candidates verified)\n", epsilon, matches.size(),
              static_cast<unsigned long long>(stats.exact_dtw_calls));
  std::printf("%-10s %-12s %-6s %-8s\n", "machine", "window", "len",
              "D_tw");
  const Match* best_per_seq[2] = {nullptr, nullptr};
  for (const Match& m : matches) {
    std::printf("M%-9u [%4u..%4u] %-6u %.2f\n", m.seq, m.start,
                m.start + m.len - 1, m.len, m.distance);
    if (m.seq == fleet.size() - 2 &&
        (best_per_seq[0] == nullptr ||
         m.distance < best_per_seq[0]->distance)) {
      best_per_seq[0] = &m;
    }
    if (m.seq == fleet.size() - 1 &&
        (best_per_seq[1] == nullptr ||
         m.distance < best_per_seq[1]->distance)) {
      best_per_seq[1] = &m;
    }
  }
  std::printf("\nboth planted machines found: %s (verbatim %s, "
              "half-speed %s)\n",
              best_per_seq[0] != nullptr && best_per_seq[1] != nullptr
                  ? "yes" : "NO",
              best_per_seq[0] != nullptr ? "hit" : "miss",
              best_per_seq[1] != nullptr ? "hit" : "miss");
  return 0;
}
