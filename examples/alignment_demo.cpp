// Alignment demo: reproduces the paper's Figure 1 — the cumulative
// distance table for S3 = <3,4,3> and S4 = <4,5,6,7,6,6> and the element
// mapping that achieves the minimum distance — then aligns a time-warped
// pair to show how duplicates map.
//
//   ./alignment_demo

#include <cstdio>
#include <vector>

#include "dtw/alignment.h"
#include "dtw/dtw.h"
#include "dtw/warping_table.h"

using tswarp::Value;

namespace {

void PrintTable(const std::vector<Value>& q, const std::vector<Value>& s) {
  tswarp::dtw::WarpingTable table(q);
  std::printf("        ");
  for (Value v : q) std::printf("%6.0f", v);
  std::printf("   <- S_i (x axis)\n");
  for (std::size_t y = 0; y < s.size(); ++y) {
    table.PushRowValue(s[y]);
    std::printf("row %zu |", y + 1);
    // Recompute each row's cells with a fresh table for display purposes.
    tswarp::dtw::WarpingTable fresh(q);
    for (std::size_t r = 0; r <= y; ++r) fresh.PushRowValue(s[r]);
    // WarpingTable exposes only the last column/min; rebuild full row via
    // per-prefix distances instead.
    for (std::size_t x = 1; x <= q.size(); ++x) {
      const std::vector<Value> prefix(q.begin(),
                                      q.begin() + static_cast<long>(x));
      tswarp::dtw::WarpingTable cell(prefix);
      for (std::size_t r = 0; r <= y; ++r) cell.PushRowValue(s[r]);
      std::printf("%6.0f", cell.LastColumn());
    }
    std::printf("   S_j[%zu] = %.0f\n", y + 1, s[y]);
  }
}

void PrintMapping(const std::vector<Value>& a, const std::vector<Value>& b,
                  const char* name_a, const char* name_b) {
  const tswarp::dtw::Alignment alignment = tswarp::dtw::DtwAlign(a, b);
  std::printf("D_tw = %.1f; element mapping (%s[i] ~ %s[j]):\n",
              alignment.distance, name_a, name_b);
  for (const auto& step : alignment.path) {
    std::printf("  %s[%u]=%.0f  ~  %s[%u]=%.0f   (|diff| = %.0f)\n", name_a,
                step.a_index + 1, a[step.a_index], name_b, step.b_index + 1,
                b[step.b_index],
                std::abs(a[step.a_index] - b[step.b_index]));
  }
}

}  // namespace

int main() {
  const std::vector<Value> s3 = {3, 4, 3};
  const std::vector<Value> s4 = {4, 5, 6, 7, 6, 6};

  std::printf("Paper Figure 1(a): cumulative distance table for S3 and "
              "S4\n\n");
  PrintTable(s3, s4);
  std::printf("\nLast column of row 4 = D_tw(S3, S4[1:4]) = 8 (as in the "
              "paper);\nfinal distance D_tw(S3, S4) = %.0f.\n\n",
              tswarp::dtw::DtwDistance(s3, s4));

  std::printf("Paper Figure 1(b): mapping of elements\n\n");
  PrintMapping(s3, s4, "S3", "S4");

  std::printf("\nPaper introduction example: S2 duplicated equals S1\n\n");
  const std::vector<Value> s1 = {20, 20, 21, 21, 20, 20, 23, 23};
  const std::vector<Value> s2 = {20, 21, 20, 23};
  PrintMapping(s2, s1, "S2", "S1");
  return 0;
}
