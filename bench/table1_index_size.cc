// Reproduces Table 1 of the paper: index sizes (KB) of ST, ST_C (EL, ME)
// and SST_C (EL, ME) on the stock data set for category counts
// {10, 20, 40, 80, 120, 160, 200, 250, 300}.
//
// Expected shape (paper): ST is orders of magnitude larger than ST_C;
// SST_C is smaller than ST_C; both categorized indexes grow with the
// number of categories; ME indexes are larger than EL at the same count
// (better-balanced categories share fewer long runs).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "categorize/categorizer.h"
#include "core/index.h"

namespace tswarp {
namespace {

using bench::PaperStockDb;
using categorize::Method;
using core::Index;
using core::IndexKind;
using core::IndexOptions;

double IndexKb(const seqdb::SequenceDatabase& db, IndexKind kind,
               Method method, std::size_t categories) {
  IndexOptions options;
  options.kind = kind;
  options.method = method;
  options.num_categories = categories;
  auto index = Index::Build(&db, options);
  if (!index.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 index.status().ToString().c_str());
    return -1;
  }
  return static_cast<double>(index->build_info().index_bytes) / 1024.0;
}

int Run(int argc, char** argv) {
  const bool quick = bench::HasFlag(argc, argv, "--quick");
  const seqdb::SequenceDatabase db = PaperStockDb();
  std::printf("Table 1: index sizes (KB); stock data, %zu sequences, "
              "avg length %.0f, database %.0f KB\n",
              db.size(), db.AverageLength(),
              static_cast<double>(db.DataBytes()) / 1024.0);
  std::printf("(paper reports: ST 158,512 KB; ST_C/SST_C grow with "
              "#categories; SST_C << ST_C << ST)\n\n");

  const double st_kb = IndexKb(db, IndexKind::kSuffixTree, Method::kMaxEntropy,
                               0);
  std::printf("%-6s %12s %12s %12s %12s %12s\n", "#cat", "ST", "ST_C(EL)",
              "ST_C(ME)", "SST_C(EL)", "SST_C(ME)");
  std::vector<std::size_t> counts = {10, 20, 40, 80, 120, 160, 200, 250, 300};
  if (quick) counts = {10, 40, 160};
  for (std::size_t c : counts) {
    const double stc_el = IndexKb(db, IndexKind::kCategorized,
                                  Method::kEqualLength, c);
    const double stc_me = IndexKb(db, IndexKind::kCategorized,
                                  Method::kMaxEntropy, c);
    const double sstc_el = IndexKb(db, IndexKind::kSparse,
                                   Method::kEqualLength, c);
    const double sstc_me = IndexKb(db, IndexKind::kSparse,
                                   Method::kMaxEntropy, c);
    std::printf("%-6zu %12.0f %12.0f %12.0f %12.0f %12.0f\n", c, st_kb,
                stc_el, stc_me, sstc_el, sstc_me);
  }
  return 0;
}

}  // namespace
}  // namespace tswarp

int main(int argc, char** argv) { return tswarp::Run(argc, argv); }
