// Ablation A7: per-node envelope summaries — the subtree screen ahead of
// the LB cascade, and the recall dial it enables.
//
// Two legs, on synthetic stock and ECG workloads:
//
//  1. Exact leg (approx_factor 1.0): summaries off vs on. The screen must
//     return the identical answer while cutting nodes expanded and table
//     rows pushed — the GetChildren / row-step reduction the summary
//     section buys. The "summary_pruned" counter is the number of
//     subtrees skipped with zero row-step work; CI asserts it is > 0.
//
//  2. Dial leg (approx_factor > 1): sweeps the factor and reports the
//     recall/latency frontier. At factor f the screen prunes an edge when
//     summary_lb * f exceeds the threshold, so results are always a
//     subset of the exact answer; recall = |approx| / |exact| (measured
//     over the whole workload) against per-query latency.
//
// --json writes BENCH_ablation_sketch.json (see report_json.h):
//   exact/<ds>/{off,on}  latency + nodes_visited/rows_pushed/answers,
//                        and on-entries carry row_reduction + pruned
//   dial/<ds>/<factor>   latency + recall/answers/summary_pruned

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/index.h"
#include "report_json.h"

namespace tswarp {
namespace {

using bench::JsonReport;
using bench::PaperQueries;
using bench::Timer;
using core::Index;
using core::IndexKind;
using core::IndexOptions;
using core::QueryOptions;
using core::SearchStats;

struct LegResult {
  double per_query_seconds = 0;
  SearchStats stats;
};

LegResult RunLeg(const Index& index,
                 const std::vector<seqdb::Sequence>& queries, Value eps,
                 const QueryOptions& options) {
  LegResult result;
  Timer timer;
  for (const seqdb::Sequence& q : queries) {
    SearchStats s;
    index.Search(q, eps, options, &s);
    result.stats.Merge(s);
  }
  result.per_query_seconds =
      timer.Seconds() / static_cast<double>(queries.size());
  return result;
}

int Run(int argc, char** argv) {
  const bool json = bench::StripJsonFlag(&argc, argv);
  JsonReport report("ablation_sketch");
  const bool quick = bench::HasFlag(argc, argv, "--quick");
  const auto num_queries = static_cast<std::size_t>(
      bench::FlagValue(argc, argv, "--queries", quick ? 3 : 10));
  const Value eps =
      static_cast<Value>(bench::FlagValue(argc, argv, "--epsilon", 10));

  struct Workload {
    const char* name;
    seqdb::SequenceDatabase db;
  };
  datagen::StockOptions stock;
  if (quick) stock.num_sequences = 150;
  datagen::EcgOptions ecg;
  ecg.num_sequences = quick ? 20 : 50;
  std::vector<Workload> workloads;
  workloads.push_back({"stock", datagen::GenerateStocks(stock)});
  workloads.push_back({"ecg", datagen::GenerateEcg(ecg)});

  bool screened_something = false;
  for (const Workload& w : workloads) {
    const std::vector<seqdb::Sequence> queries =
        PaperQueries(w.db, num_queries);
    IndexOptions options;
    options.kind = IndexKind::kSparse;
    options.num_categories = 40;
    auto index = Index::Build(&w.db, options);
    if (!index.ok()) {
      std::fprintf(stderr, "%s build failed: %s\n", w.name,
                   index.status().ToString().c_str());
      return 1;
    }

    // --- Leg 1: exact, screen off vs on.
    QueryOptions off;
    off.use_node_summaries = false;
    const LegResult no_screen = RunLeg(*index, queries, eps, off);
    const LegResult screen = RunLeg(*index, queries, eps, QueryOptions{});
    if (screen.stats.answers != no_screen.stats.answers) {
      std::fprintf(stderr,
                   "%s: summary screen changed the answer count "
                   "(%llu vs %llu) — exactness bug\n",
                   w.name,
                   static_cast<unsigned long long>(screen.stats.answers),
                   static_cast<unsigned long long>(no_screen.stats.answers));
      return 1;
    }
    screened_something |= screen.stats.nodes_pruned_by_summary > 0;
    const double node_reduction =
        static_cast<double>(no_screen.stats.nodes_visited) /
        static_cast<double>(screen.stats.nodes_visited);
    const double row_reduction =
        static_cast<double>(no_screen.stats.rows_pushed) /
        static_cast<double>(screen.stats.rows_pushed);
    std::printf(
        "Ablation A7 [%s]: SST_C(ME,40), %zu seqs, eps %.0f, %zu queries\n",
        w.name, w.db.size(), eps, queries.size());
    std::printf("  %-10s %12s %14s %14s %12s\n", "screen", "time (ms)",
                "nodes", "rows", "answers");
    std::printf("  %-10s %12.3f %14llu %14llu %12llu\n", "off",
                no_screen.per_query_seconds * 1e3,
                static_cast<unsigned long long>(no_screen.stats.nodes_visited),
                static_cast<unsigned long long>(no_screen.stats.rows_pushed),
                static_cast<unsigned long long>(no_screen.stats.answers));
    std::printf("  %-10s %12.3f %14llu %14llu %12llu\n", "on",
                screen.per_query_seconds * 1e3,
                static_cast<unsigned long long>(screen.stats.nodes_visited),
                static_cast<unsigned long long>(screen.stats.rows_pushed),
                static_cast<unsigned long long>(screen.stats.answers));
    std::printf("  (nodes expanded /%.2f, rows pushed /%.2f, %llu subtrees "
                "pruned — identical answers)\n\n",
                node_reduction, row_reduction,
                static_cast<unsigned long long>(
                    screen.stats.nodes_pruned_by_summary));
    report.Add(std::string("exact/") + w.name + "/off",
               no_screen.per_query_seconds * 1e9,
               {{"nodes_visited",
                 static_cast<double>(no_screen.stats.nodes_visited)},
                {"rows_pushed",
                 static_cast<double>(no_screen.stats.rows_pushed)},
                {"answers", static_cast<double>(no_screen.stats.answers)}});
    report.Add(std::string("exact/") + w.name + "/on",
               screen.per_query_seconds * 1e9,
               {{"nodes_visited",
                 static_cast<double>(screen.stats.nodes_visited)},
                {"rows_pushed",
                 static_cast<double>(screen.stats.rows_pushed)},
                {"answers", static_cast<double>(screen.stats.answers)},
                {"node_reduction", node_reduction},
                {"row_reduction", row_reduction},
                {"summary_pruned",
                 static_cast<double>(
                     screen.stats.nodes_pruned_by_summary)}});

    // --- Leg 2: the recall dial.
    std::printf("  %-8s %12s %10s %12s %14s\n", "factor", "time (ms)",
                "recall", "answers", "pruned");
    for (const double factor : {1.0, 1.5, 2.0, 4.0, 8.0}) {
      QueryOptions dial;
      dial.approx_factor = static_cast<Value>(factor);
      const LegResult leg = RunLeg(*index, queries, eps, dial);
      const double recall =
          no_screen.stats.answers == 0
              ? 1.0
              : static_cast<double>(leg.stats.answers) /
                    static_cast<double>(no_screen.stats.answers);
      std::printf("  %-8.1f %12.3f %9.1f%% %12llu %14llu\n", factor,
                  leg.per_query_seconds * 1e3, recall * 100,
                  static_cast<unsigned long long>(leg.stats.answers),
                  static_cast<unsigned long long>(
                      leg.stats.nodes_pruned_by_summary));
      char name[64];
      std::snprintf(name, sizeof(name), "dial/%s/%.1f", w.name, factor);
      report.Add(name, leg.per_query_seconds * 1e9,
                 {{"recall", recall},
                  {"answers", static_cast<double>(leg.stats.answers)},
                  {"summary_pruned",
                   static_cast<double>(leg.stats.nodes_pruned_by_summary)}});
    }
    std::printf("\n");
  }
  if (!screened_something) {
    std::fprintf(stderr,
                 "summary screen never pruned a subtree — screen inert\n");
    return 1;
  }
  if (json && !report.Write()) return 1;
  return 0;
}

}  // namespace
}  // namespace tswarp

int main(int argc, char** argv) { return tswarp::Run(argc, argv); }
