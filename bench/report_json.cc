#include "report_json.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "dtw/simd.h"

namespace tswarp::bench {
namespace {

/// Minimal JSON string escaping: quotes, backslashes, and control bytes.
/// Benchmark names are ASCII ("BM_Foo/8"), so this covers everything that
/// can occur.
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// JSON has no infinity/NaN literals; clamp to null-safe numbers.
std::string Number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

JsonReport::JsonReport(std::string bench_name)
    : bench_name_(std::move(bench_name)) {}

void JsonReport::Add(std::string name, double real_time_ns,
                     Counters counters) {
  entries_.push_back({std::move(name), real_time_ns, std::move(counters)});
}

bool JsonReport::Write(const std::string& dir) const {
  const std::string path = dir + "/BENCH_" + bench_name_ + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "report_json: cannot write %s\n", path.c_str());
    return false;
  }
  out << "{\n  \"bench\": \"" << Escape(bench_name_) << "\",\n"
      << "  \"simd_backend\": \"" << dtw::simd::ActiveBackend() << "\",\n"
      << "  \"entries\": [\n";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    out << "    {\"name\": \"" << Escape(e.name) << "\", \"real_time_ns\": "
        << Number(e.real_time_ns);
    if (!e.counters.empty()) {
      out << ", \"counters\": {";
      for (std::size_t j = 0; j < e.counters.size(); ++j) {
        if (j != 0) out << ", ";
        out << "\"" << Escape(e.counters[j].first)
            << "\": " << Number(e.counters[j].second);
      }
      out << "}";
    }
    out << "}" << (i + 1 < entries_.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "report_json: write to %s failed\n", path.c_str());
    return false;
  }
  std::fprintf(stderr, "report_json: wrote %s (%zu entries, backend %s)\n",
               path.c_str(), entries_.size(), dtw::simd::ActiveBackend());
  return true;
}

bool StripJsonFlag(int* argc, char** argv) {
  bool found = false;
  int w = 0;
  for (int r = 0; r < *argc; ++r) {
    if (std::strcmp(argv[r], "--json") == 0) {
      found = true;
      continue;
    }
    argv[w++] = argv[r];
  }
  *argc = w;
  return found;
}

}  // namespace tswarp::bench
