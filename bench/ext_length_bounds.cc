// Extension E1 (paper Section 8): length-bounded index under a warping
// window. With a Sakoe-Chiba band w and query lengths in [qmin, qmax],
// answer lengths fall in [qmin - w, qmax + w]; suffixes shorter than the
// minimum are not inserted and longer ones are truncated. Reports the
// index-size reduction and banded query times vs the unbounded index.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/index.h"

namespace tswarp {
namespace {

using bench::PaperQueries;
using bench::PaperStockDb;
using bench::Timer;
using core::Index;
using core::IndexKind;
using core::IndexOptions;
using core::QueryOptions;

int Run(int argc, char** argv) {
  const bool quick = bench::HasFlag(argc, argv, "--quick");
  const auto num_queries = static_cast<std::size_t>(
      bench::FlagValue(argc, argv, "--queries", quick ? 3 : 10));
  const Value epsilon =
      static_cast<Value>(bench::FlagValue(argc, argv, "--epsilon", 10));
  const Pos qmin = 16, qmax = 24;  // The workload's query-length range.

  const seqdb::SequenceDatabase db = PaperStockDb();
  const std::vector<seqdb::Sequence> queries = PaperQueries(db, num_queries);

  std::printf("Extension E1: length-bounded index with warping window, "
              "epsilon %.0f, %zu queries (len %u..%u)\n\n",
              epsilon, queries.size(), qmin, qmax);
  std::printf("%-6s %14s %14s %14s %14s\n", "band", "bounded KB",
              "unbounded KB", "bounded (s)", "unbounded (s)");

  IndexOptions unbounded_options;
  unbounded_options.kind = IndexKind::kCategorized;
  unbounded_options.num_categories = 40;
  auto unbounded = Index::Build(&db, unbounded_options);
  if (!unbounded.ok()) return 1;

  for (const Pos band : std::vector<Pos>{2, 4, 8}) {
    IndexOptions options = unbounded_options;
    options.min_suffix_length = qmin > band ? qmin - band : 1;
    options.max_suffix_length = qmax + band;
    auto bounded = Index::Build(&db, options);
    if (!bounded.ok()) return 1;

    QueryOptions query_options;
    query_options.band = band;
    Timer t1;
    std::size_t answers_bounded = 0;
    for (const seqdb::Sequence& q : queries) {
      answers_bounded += bounded->Search(q, epsilon, query_options).size();
    }
    const double bounded_time = t1.Seconds();
    Timer t2;
    std::size_t answers_unbounded = 0;
    for (const seqdb::Sequence& q : queries) {
      answers_unbounded +=
          unbounded->Search(q, epsilon, query_options).size();
    }
    const double unbounded_time = t2.Seconds();
    if (answers_bounded != answers_unbounded) {
      std::fprintf(stderr, "ANSWER MISMATCH: %zu vs %zu\n", answers_bounded,
                   answers_unbounded);
      return 1;
    }
    std::printf("%-6u %14.0f %14.0f %14.4f %14.4f\n", band,
                bounded->build_info().index_bytes / 1024.0,
                unbounded->build_info().index_bytes / 1024.0,
                bounded_time / static_cast<double>(queries.size()),
                unbounded_time / static_cast<double>(queries.size()));
  }
  std::printf("\n(both indexes return identical answer sets under the "
              "band; the bounded index stores only prefixes of length "
              "qmax+band)\n");
  return 0;
}

}  // namespace
}  // namespace tswarp

int main(int argc, char** argv) { return tswarp::Run(argc, argv); }
