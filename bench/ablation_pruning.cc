// Ablation A1: the R_p reduction factor — Theorem-1 branch pruning on vs
// off, for the tree search and the sequential scan, across thresholds.
// R_p grows as epsilon shrinks (Section 4.3); with pruning disabled the
// traversal degenerates toward visiting every node.
//
// --json writes BENCH_ablation_pruning.json (see report_json.h): one
// entry per epsilon with the pruned per-query latency and the R_p /
// speedup counters, so later sessions can diff the pruning trajectory
// against the committed baseline.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/index.h"
#include "core/seq_scan.h"
#include "report_json.h"

namespace tswarp {
namespace {

using bench::JsonReport;
using bench::PaperQueries;
using bench::PaperStockDb;
using bench::Timer;
using core::Index;
using core::IndexKind;
using core::IndexOptions;
using core::QueryOptions;
using core::SearchStats;

int Run(int argc, char** argv) {
  const bool json = bench::StripJsonFlag(&argc, argv);
  JsonReport report("ablation_pruning");
  const bool quick = bench::HasFlag(argc, argv, "--quick");
  const auto num_queries = static_cast<std::size_t>(
      bench::FlagValue(argc, argv, "--queries", quick ? 3 : 10));
  const seqdb::SequenceDatabase db = PaperStockDb();
  const std::vector<seqdb::Sequence> queries = PaperQueries(db, num_queries);

  IndexOptions options;
  options.kind = IndexKind::kSparse;
  options.num_categories = 40;
  auto index = Index::Build(&db, options);
  if (!index.ok()) return 1;

  std::printf("Ablation A1: Theorem-1 pruning (R_p), SST_C(ME,40), "
              "%zu queries\n\n", queries.size());
  std::printf("%-6s %12s %12s %10s %16s %16s %8s\n", "eps", "prune(s)",
              "noprune(s)", "speedup", "rows(prune)", "rows(noprune)", "R_p");
  for (const Value eps : std::vector<Value>{2, 5, 10, 20, 40}) {
    SearchStats pruned{}, full{};
    Timer t1;
    for (const seqdb::Sequence& q : queries) {
      SearchStats s;
      index->Search(q, eps, {}, &s);
      pruned.rows_pushed += s.rows_pushed;
    }
    const double pruned_time = t1.Seconds();
    QueryOptions no_prune;
    no_prune.prune = false;
    Timer t2;
    for (const seqdb::Sequence& q : queries) {
      SearchStats s;
      index->Search(q, eps, no_prune, &s);
      full.rows_pushed += s.rows_pushed;
    }
    const double full_time = t2.Seconds();
    const double speedup = full_time / pruned_time;
    const double reduction = static_cast<double>(full.rows_pushed) /
                             static_cast<double>(pruned.rows_pushed);
    std::printf("%-6.0f %12.4f %12.4f %9.1fx %16llu %16llu %8.1f\n", eps,
                pruned_time / static_cast<double>(queries.size()),
                full_time / static_cast<double>(queries.size()),
                speedup,
                static_cast<unsigned long long>(pruned.rows_pushed),
                static_cast<unsigned long long>(full.rows_pushed),
                reduction);
    report.Add("eps/" + std::to_string(static_cast<long>(eps)),
               pruned_time / static_cast<double>(queries.size()) * 1e9,
               {{"speedup", speedup},
                {"R_p", reduction},
                {"rows_prune", static_cast<double>(pruned.rows_pushed)},
                {"rows_noprune", static_cast<double>(full.rows_pushed)}});
  }
  if (json && !report.Write()) return 1;
  return 0;
}

}  // namespace
}  // namespace tswarp

int main(int argc, char** argv) { return tswarp::Run(argc, argv); }
