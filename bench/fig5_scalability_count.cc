// Reproduces Figure 5 of the paper: query time of sequential scanning vs
// ME-based SimSearch-SST_C as the number of artificial sequences grows
// from 1,000 to 10,000 at a fixed average length of 200.
//
// Expected shape (paper): both curves grow linearly in the number of
// sequences; SST_C stays well below SeqScan throughout.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/index.h"
#include "core/seq_scan.h"
#include "datagen/generators.h"

namespace tswarp {
namespace {

using bench::PaperQueries;
using bench::Timer;
using core::Index;
using core::IndexKind;
using core::IndexOptions;

int Run(int argc, char** argv) {
  const bool quick = bench::HasFlag(argc, argv, "--quick");
  const auto num_queries = static_cast<std::size_t>(
      bench::FlagValue(argc, argv, "--queries", quick ? 2 : 6));
  const Value epsilon =
      static_cast<Value>(bench::FlagValue(argc, argv, "--epsilon", 10));

  std::printf("Figure 5: scalability in the number of sequences "
              "(avg length 200, epsilon %.0f, %zu queries)\n",
              epsilon, num_queries);
  std::printf("(paper: both curves grow linearly in M; SST_C well below "
              "SeqScan)\n\n");
  std::printf("%-8s %12s %14s %10s %12s %12s\n", "M", "SeqScan(s)",
              "SST_C(ME)(s)", "speedup", "index KB", "db KB");

  std::vector<std::size_t> counts = {1000, 2500, 5000, 7500, 10000};
  if (quick) counts = {1000, 5000};
  for (const std::size_t m : counts) {
    datagen::RandomWalkOptions data_options;
    data_options.num_sequences = m;
    data_options.avg_length = 200;
    data_options.length_jitter = 20;
    data_options.seed = 5000 + m;
    const seqdb::SequenceDatabase db =
        datagen::GenerateRandomWalks(data_options);
    const std::vector<seqdb::Sequence> queries =
        PaperQueries(db, num_queries);

    IndexOptions options;
    options.kind = IndexKind::kSparse;
    options.num_categories = 10;
    auto index = Index::Build(&db, options);
    if (!index.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   index.status().ToString().c_str());
      return 1;
    }

    core::SeqScanOptions full_scan;  // Paper baseline: full tables.
    full_scan.prune = false;
    Timer scan_timer;
    for (const seqdb::Sequence& q : queries) {
      core::SeqScan(db, q, epsilon, full_scan);
    }
    const double scan_time =
        scan_timer.Seconds() / static_cast<double>(queries.size());
    const double index_time =
        bench::AvgIndexQuerySeconds(*index, queries, epsilon);

    std::printf("%-8zu %12.4f %14.4f %9.1fx %12.0f %12.0f\n", m, scan_time,
                index_time, scan_time / index_time,
                index->build_info().index_bytes / 1024.0,
                static_cast<double>(db.DataBytes()) / 1024.0);
  }
  return 0;
}

}  // namespace
}  // namespace tswarp

int main(int argc, char** argv) { return tswarp::Run(argc, argv); }
