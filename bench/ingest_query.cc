// Mixed ingest + query load generator for tswarpd's streaming mode: an
// in-process server over a TieredIndex takes concurrent /append traffic,
// /search traffic, and one HTTP continuous query, for a fixed duration.
//
//   ingest_query [--duration S] [--appenders N] [--searchers N]
//                [--memtable N] [--sealed N] [--quick] [--json]
//
// Every appender streams sequences drawn from a fixed seed; every Kth
// appended sequence embeds a sentinel pattern the continuous query is
// registered for, so the expected callback count is known exactly. The
// run FAILS (exit 1) on any 5xx/transport error, on any lost or duplicate
// continuous delivery, or on a dropped channel entry — the CI
// ingest-smoke contract.
//
// --json writes BENCH_ingest_query.json (see report_json.h) with ingest/
// query throughput and latency percentiles for cross-session diffing.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "report_json.h"
#include "core/tiered_index.h"
#include "datagen/generators.h"
#include "seqdb/sequence_database.h"
#include "server/client.h"
#include "server/index_handle.h"
#include "server/json.h"
#include "server/server.h"

namespace tswarp {
namespace {

using Clock = std::chrono::steady_clock;

/// Every kSentinelEvery-th appended sequence carries this exact pattern;
/// the continuous query registers for it with a tiny epsilon, so matches
/// from ordinary random-walk traffic are impossible and the expected
/// delivery count is simply the number of sentinel appends.
constexpr int kSentinelEvery = 5;
const std::vector<Value>& SentinelPattern() {
  static const std::vector<Value> kPattern = {900, 930, 960, 990,
                                              1020, 1050, 1080, 1110};
  return kPattern;
}

std::string ValuesBody(const std::vector<Value>& values) {
  std::string body = "{\"values\":[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) body.push_back(',');
    server::AppendJsonNumber(&body, values[i]);
  }
  body += "]}";
  return body;
}

std::string QueryBody(const std::vector<Value>& query, double epsilon) {
  std::string body = "{\"query\":[";
  for (std::size_t i = 0; i < query.size(); ++i) {
    if (i != 0) body.push_back(',');
    server::AppendJsonNumber(&body, query[i]);
  }
  body += "],\"epsilon\":";
  server::AppendJsonNumber(&body, epsilon);
  body.push_back('}');
  return body;
}

double PercentileNs(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  std::size_t rank =
      static_cast<std::size_t>(p * static_cast<double>(sorted.size()));
  if (rank >= sorted.size()) rank = sorted.size() - 1;
  return sorted[rank];
}

int Run(int argc, char** argv) {
  const bool json = bench::StripJsonFlag(&argc, argv);
  const bool quick = bench::HasFlag(argc, argv, "--quick");
  const double duration_s = static_cast<double>(
      bench::FlagValue(argc, argv, "--duration", quick ? 2 : 5));
  const long appenders = bench::FlagValue(argc, argv, "--appenders", 2);
  const long searchers = bench::FlagValue(argc, argv, "--searchers", 3);
  const long memtable = bench::FlagValue(argc, argv, "--memtable", 4);
  const long sealed = bench::FlagValue(argc, argv, "--sealed", 2);

  datagen::RandomWalkOptions walk;
  walk.num_sequences = 40;
  walk.avg_length = 96;
  walk.length_jitter = 12;
  walk.seed = 9;
  const seqdb::SequenceDatabase db = datagen::GenerateRandomWalks(walk);

  core::TieredOptions tiered_options;
  tiered_options.index.kind = core::IndexKind::kCategorized;
  tiered_options.index.num_categories = 12;
  tiered_options.memtable_max_sequences = static_cast<std::size_t>(memtable);
  tiered_options.max_sealed_tiers = static_cast<std::size_t>(sealed);
  tiered_options.merge_in_background = true;
  auto tiered = core::TieredIndex::Create(&db, tiered_options);
  if (!tiered.ok()) {
    std::fprintf(stderr, "tiered create failed: %s\n",
                 tiered.status().ToString().c_str());
    return 1;
  }
  std::shared_ptr<core::TieredIndex> shared = std::move(*tiered);
  server::IndexHandle handle(shared);
  server::ServerOptions server_options;
  server_options.connection_threads =
      static_cast<std::size_t>(appenders + searchers + 1);
  auto server = server::Server::Start(&handle, server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  const int port = (*server)->port();

  // Register the continuous sentinel query over the wire.
  auto control = server::HttpClient::Connect("127.0.0.1", port);
  if (!control.ok()) {
    std::fprintf(stderr, "connect failed\n");
    return 1;
  }
  auto reg = control->Post("/continuous/register",
                           QueryBody(SentinelPattern(), 0.01));
  if (!reg.ok() || reg->status != 200) {
    std::fprintf(stderr, "continuous register failed\n");
    return 1;
  }
  auto reg_body = server::ParseJson(reg->body);
  const std::string id_body =
      "{\"id\":" + std::to_string(static_cast<std::uint64_t>(
                       reg_body->Find("id")->AsNumber())) +
      "}";

  std::atomic<bool> done{false};
  std::atomic<std::size_t> appends_ok{0}, appends_err{0};
  std::atomic<std::size_t> sentinels_sent{0};
  std::atomic<std::size_t> searches_ok{0}, searches_err{0};
  std::vector<std::vector<double>> append_lat(
      static_cast<std::size_t>(appenders));
  std::vector<std::vector<double>> search_lat(
      static_cast<std::size_t>(searchers));

  std::vector<std::thread> pool;
  for (long a = 0; a < appenders; ++a) {
    pool.emplace_back([&, a] {
      auto client = server::HttpClient::Connect("127.0.0.1", port);
      std::mt19937_64 rng(1000 + static_cast<std::uint64_t>(a));
      std::normal_distribution<double> step(0.0, 1.0);
      int n = 0;
      while (!done.load(std::memory_order_relaxed)) {
        std::vector<Value> seq;
        if (++n % kSentinelEvery == 0) {
          seq = SentinelPattern();
          sentinels_sent.fetch_add(1, std::memory_order_relaxed);
        } else {
          double x = 0;
          for (int i = 0; i < 48; ++i) {
            x += step(rng);
            seq.push_back(x);
          }
        }
        const Clock::time_point t0 = Clock::now();
        if (!client.ok()) {
          client = server::HttpClient::Connect("127.0.0.1", port);
          if (!client.ok()) {
            appends_err.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
        }
        auto response = client->Post("/append", ValuesBody(seq));
        if (response.ok() && response->status == 200) {
          appends_ok.fetch_add(1, std::memory_order_relaxed);
          append_lat[static_cast<std::size_t>(a)].push_back(
              static_cast<double>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      Clock::now() - t0)
                      .count()));
        } else {
          appends_err.fetch_add(1, std::memory_order_relaxed);
          if (!response.ok()) {
            client =
                StatusOr<server::HttpClient>(Status::IOError("reconnect"));
          }
        }
      }
    });
  }
  for (long s = 0; s < searchers; ++s) {
    pool.emplace_back([&, s] {
      auto client = server::HttpClient::Connect("127.0.0.1", port);
      const std::span<const Value> sub =
          db.Subsequence(static_cast<SeqId>(s % 4), 0, 10);
      const std::string body =
          QueryBody(std::vector<Value>(sub.begin(), sub.end()), 2.5);
      while (!done.load(std::memory_order_relaxed)) {
        const Clock::time_point t0 = Clock::now();
        if (!client.ok()) {
          client = server::HttpClient::Connect("127.0.0.1", port);
          if (!client.ok()) {
            searches_err.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
        }
        auto response = client->Post("/search", body);
        if (response.ok() &&
            (response->status == 200 || response->status == 429)) {
          if (response->status == 200) {
            searches_ok.fetch_add(1, std::memory_order_relaxed);
            search_lat[static_cast<std::size_t>(s)].push_back(
                static_cast<double>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        Clock::now() - t0)
                        .count()));
          }
        } else {
          searches_err.fetch_add(1, std::memory_order_relaxed);
          if (!response.ok()) {
            client =
                StatusOr<server::HttpClient>(Status::IOError("reconnect"));
          }
        }
      }
    });
  }

  // Poll the continuous channel throughout so the bounded buffer never
  // overflows; every delivery names the sentinel pattern.
  std::atomic<std::size_t> deliveries{0};
  std::atomic<std::size_t> dropped{0};
  std::atomic<bool> poll_error{false};
  std::thread poller([&] {
    while (!done.load(std::memory_order_relaxed)) {
      auto response = control->Post("/continuous/poll", id_body);
      if (!response.ok() || response->status != 200) {
        std::fprintf(stderr, "poller: poll failed: %s status=%d\n",
                     response.ok() ? "(http)"
                                   : response.status().ToString().c_str(),
                     response.ok() ? response->status : -1);
        poll_error.store(true, std::memory_order_relaxed);
        return;
      }
      auto body = server::ParseJson(response->body);
      if (!body.ok()) {
        poll_error.store(true, std::memory_order_relaxed);
        return;
      }
      deliveries.store(
          static_cast<std::size_t>(body->Find("delivered")->AsNumber()),
          std::memory_order_relaxed);
      dropped.store(
          static_cast<std::size_t>(body->Find("dropped")->AsNumber()),
          std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  const Clock::time_point start = Clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(duration_s));
  done.store(true, std::memory_order_relaxed);
  for (std::thread& t : pool) t.join();
  poller.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  // Final drain: merges settle, then one last poll picks up everything
  // delivered after the poller stopped. Fresh connection: the drain can
  // outlast the server's 5s keep-alive idle limit on the old one.
  shared->WaitForMerges();
  std::size_t final_deliveries = deliveries.load();
  std::size_t final_dropped = dropped.load();
  control = server::HttpClient::Connect("127.0.0.1", port);
  if (control.ok()) {
    auto response = control->Post("/continuous/poll", id_body);
    if (response.ok() && response->status == 200) {
      auto body = server::ParseJson(response->body);
      if (body.ok()) {
        final_deliveries =
            static_cast<std::size_t>(body->Find("delivered")->AsNumber());
        final_dropped =
            static_cast<std::size_t>(body->Find("dropped")->AsNumber());
      }
    } else {
      std::fprintf(stderr, "final poll failed: %s status=%d\n",
                   response.ok() ? "(http)"
                                 : response.status().ToString().c_str(),
                   response.ok() ? response->status : -1);
      poll_error.store(true, std::memory_order_relaxed);
    }
  } else {
    std::fprintf(stderr, "final poll reconnect failed: %s\n",
                 control.status().ToString().c_str());
    poll_error.store(true, std::memory_order_relaxed);
  }
  (*server)->Shutdown();

  // Each sentinel append delivers exactly one match (the verbatim pattern;
  // epsilon 0.01 admits no partial alignment of the 30-unit ramp), so
  // lost callbacks show up as final_deliveries < sentinels and duplicate
  // deliveries as >.
  const std::size_t sentinels = sentinels_sent.load();
  const bool callbacks_ok = !poll_error.load() && final_dropped == 0 &&
                            final_deliveries == sentinels;

  std::vector<double> append_all, search_all;
  for (const auto& v : append_lat) {
    append_all.insert(append_all.end(), v.begin(), v.end());
  }
  for (const auto& v : search_lat) {
    search_all.insert(search_all.end(), v.begin(), v.end());
  }
  std::sort(append_all.begin(), append_all.end());
  std::sort(search_all.begin(), search_all.end());
  const core::TieredStats stats = shared->Stats();

  std::printf("ingest_query: %.1fs, %ld appenders + %ld searchers "
              "(memtable %ld, sealed %ld)\n",
              duration_s, appenders, searchers, memtable, sealed);
  std::printf("  appends %zu ok / %zu err (%.1f/s), %zu sentinels\n",
              appends_ok.load(), appends_err.load(),
              static_cast<double>(appends_ok.load()) / wall_s, sentinels);
  std::printf("  searches %zu ok / %zu err (%.1f/s)\n", searches_ok.load(),
              searches_err.load(),
              static_cast<double>(searches_ok.load()) / wall_s);
  std::printf("  append p50 %.2f ms p99 %.2f ms; search p50 %.2f ms "
              "p99 %.2f ms\n",
              PercentileNs(append_all, 0.5) / 1e6,
              PercentileNs(append_all, 0.99) / 1e6,
              PercentileNs(search_all, 0.5) / 1e6,
              PercentileNs(search_all, 0.99) / 1e6);
  std::printf("  continuous: %zu delivered, %zu dropped (expected >= %zu)\n",
              final_deliveries, final_dropped, sentinels);
  std::printf("  tiers %zu, merges %llu completed, %zu appended\n",
              stats.tiers.size(),
              static_cast<unsigned long long>(stats.merges_completed),
              stats.appended_sequences);

  if (json) {
    bench::JsonReport report("ingest_query");
    const bench::JsonReport::Counters counters = {
        {"appends", static_cast<double>(appends_ok.load())},
        {"append_errors", static_cast<double>(appends_err.load())},
        {"searches", static_cast<double>(searches_ok.load())},
        {"search_errors", static_cast<double>(searches_err.load())},
        {"ingest_rate", static_cast<double>(appends_ok.load()) / wall_s},
        {"query_rate", static_cast<double>(searches_ok.load()) / wall_s},
        {"sentinels", static_cast<double>(sentinels)},
        {"deliveries", static_cast<double>(final_deliveries)},
        {"dropped", static_cast<double>(final_dropped)},
        {"merges_completed", static_cast<double>(stats.merges_completed)},
    };
    report.Add("append_p50", PercentileNs(append_all, 0.5), counters);
    report.Add("append_p99", PercentileNs(append_all, 0.99));
    report.Add("search_p50", PercentileNs(search_all, 0.5));
    report.Add("search_p99", PercentileNs(search_all, 0.99));
    if (!report.Write()) return 1;
  }

  if (appends_ok.load() == 0 || appends_err.load() != 0 ||
      searches_err.load() != 0 || !callbacks_ok) {
    std::fprintf(stderr,
                 "ingest_query: FAILED (appends ok=%zu err=%zu, search "
                 "err=%zu, delivered=%zu/%zu, dropped=%zu, poll_error=%d)\n",
                 appends_ok.load(), appends_err.load(), searches_err.load(),
                 final_deliveries, sentinels, final_dropped,
                 static_cast<int>(poll_error.load()));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace tswarp

int main(int argc, char** argv) { return tswarp::Run(argc, argv); }
