// Reproduces Figure 4 of the paper: query time of sequential scanning vs
// ME-based SimSearch-SST_C as the average sequence length grows from 200
// to 1,000 with 200 artificial (random-walk) sequences.
//
// Expected shape (paper): both grow roughly quadratically with the
// average sequence length; SST_C stays well below SeqScan throughout.
// Category counts are chosen so the index stays smaller than the database.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/index.h"
#include "core/seq_scan.h"
#include "datagen/generators.h"

namespace tswarp {
namespace {

using bench::PaperQueries;
using bench::Timer;
using core::Index;
using core::IndexKind;
using core::IndexOptions;

int Run(int argc, char** argv) {
  const bool quick = bench::HasFlag(argc, argv, "--quick");
  const auto num_queries = static_cast<std::size_t>(
      bench::FlagValue(argc, argv, "--queries", quick ? 2 : 8));
  const Value epsilon =
      static_cast<Value>(bench::FlagValue(argc, argv, "--epsilon", 10));

  std::printf("Figure 4: scalability in average sequence length "
              "(200 artificial sequences, epsilon %.0f, %zu queries)\n",
              epsilon, num_queries);
  std::printf("(paper: both curves grow ~quadratically in length; "
              "SST_C well below SeqScan)\n\n");
  std::printf("%-8s %12s %14s %10s %12s %12s\n", "length", "SeqScan(s)",
              "SST_C(ME)(s)", "speedup", "index KB", "db KB");

  std::vector<std::size_t> lengths = {200, 400, 600, 800, 1000};
  if (quick) lengths = {200, 600};
  for (const std::size_t len : lengths) {
    datagen::RandomWalkOptions data_options;
    data_options.num_sequences = 200;
    data_options.avg_length = len;
    data_options.length_jitter = len / 10;
    data_options.seed = 4000 + len;
    const seqdb::SequenceDatabase db =
        datagen::GenerateRandomWalks(data_options);
    const std::vector<seqdb::Sequence> queries =
        PaperQueries(db, num_queries);

    // Pick the category count so the index stays below the database size
    // (the paper's rule for both scalability experiments).
    IndexOptions options;
    options.kind = IndexKind::kSparse;
    options.num_categories = 10;
    auto index = Index::Build(&db, options);
    if (!index.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   index.status().ToString().c_str());
      return 1;
    }

    core::SeqScanOptions full_scan;  // Paper baseline: full tables.
    full_scan.prune = false;
    Timer scan_timer;
    for (const seqdb::Sequence& q : queries) {
      core::SeqScan(db, q, epsilon, full_scan);
    }
    const double scan_time =
        scan_timer.Seconds() / static_cast<double>(queries.size());
    const double index_time =
        bench::AvgIndexQuerySeconds(*index, queries, epsilon);

    std::printf("%-8zu %12.4f %14.4f %9.1fx %12.0f %12.0f\n", len, scan_time,
                index_time, scan_time / index_time,
                index->build_info().index_bytes / 1024.0,
                static_cast<double>(db.DataBytes()) / 1024.0);
  }
  return 0;
}

}  // namespace
}  // namespace tswarp

int main(int argc, char** argv) { return tswarp::Run(argc, argv); }
