// Ablation A5: query-length sensitivity. The paper fixes the average
// query length at 20; this sweep shows how SeqScan (O(M L^2 |Q|)) and
// SimSearch-SST_C scale as |Q| grows.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/index.h"
#include "core/seq_scan.h"
#include "datagen/generators.h"

namespace tswarp {
namespace {

using bench::PaperStockDb;
using bench::Timer;
using core::Index;
using core::IndexKind;
using core::IndexOptions;

int Run(int argc, char** argv) {
  const bool quick = bench::HasFlag(argc, argv, "--quick");
  const auto num_queries = static_cast<std::size_t>(
      bench::FlagValue(argc, argv, "--queries", quick ? 3 : 8));
  const Value epsilon =
      static_cast<Value>(bench::FlagValue(argc, argv, "--epsilon", 10));
  const seqdb::SequenceDatabase db = PaperStockDb();

  IndexOptions options;
  options.kind = IndexKind::kSparse;
  options.num_categories = 60;
  auto index = Index::Build(&db, options);
  if (!index.ok()) return 1;

  std::printf("Ablation A5: query length sweep, SST_C(ME,60) vs full "
              "SeqScan, epsilon %.0f, %zu queries per length\n\n",
              epsilon, num_queries);
  std::printf("%-8s %14s %14s %10s %12s\n", "|Q|", "SeqScan(s)",
              "SST_C(s)", "speedup", "answers");
  core::SeqScanOptions full_scan;
  full_scan.prune = false;
  for (const std::size_t qlen : std::vector<std::size_t>{5, 10, 20, 40}) {
    datagen::QueryWorkloadOptions workload;
    workload.num_queries = num_queries;
    workload.avg_length = qlen;
    workload.length_jitter = 0;
    workload.seed = 100 + qlen;
    const auto queries = datagen::ExtractQueries(db, workload);
    Timer scan_timer;
    for (const auto& q : queries) core::SeqScan(db, q, epsilon, full_scan);
    const double scan_time =
        scan_timer.Seconds() / static_cast<double>(queries.size());
    Timer index_timer;
    std::size_t answers = 0;
    for (const auto& q : queries) {
      answers += index->Search(q, epsilon).size();
    }
    const double index_time =
        index_timer.Seconds() / static_cast<double>(queries.size());
    std::printf("%-8zu %14.4f %14.4f %9.1fx %12zu\n", qlen, scan_time,
                index_time, scan_time / index_time,
                answers / queries.size());
  }
  return 0;
}

}  // namespace
}  // namespace tswarp

int main(int argc, char** argv) { return tswarp::Run(argc, argv); }
