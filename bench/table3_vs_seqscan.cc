// Reproduces Table 3 of the paper: query time of sequential scanning vs
// SimSearch-SST_C with 10, 20 and 80 ME categories, for distance
// thresholds epsilon in {5, 10, 20, 30, 40, 50} on the stock data.
//
// Expected shape (paper): SST_C beats SeqScan at every epsilon; the gap
// widens with more categories (4.2x / 11.1x / 34.7x at 10/20/80) and
// narrows as epsilon grows (more answers -> less pruning, more
// post-processing).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/index.h"
#include "core/seq_scan.h"

namespace tswarp {
namespace {

using bench::PaperQueries;
using bench::PaperStockDb;
using bench::Timer;
using core::Index;
using core::IndexKind;
using core::IndexOptions;

int Run(int argc, char** argv) {
  const bool quick = bench::HasFlag(argc, argv, "--quick");
  const auto num_queries = static_cast<std::size_t>(
      bench::FlagValue(argc, argv, "--queries", quick ? 3 : 15));

  const seqdb::SequenceDatabase db = PaperStockDb();
  const std::vector<seqdb::Sequence> queries = PaperQueries(db, num_queries);

  std::printf("Table 3: SeqScan vs SimSearch-SST_C(ME), avg query time "
              "(sec), %zu queries\n", queries.size());
  std::printf("(paper speedups over SeqScan: ~4.2x @10 cat, ~11.1x @20, "
              "~34.7x @80; gap narrows as epsilon grows)\n\n");

  std::vector<Index> indexes;
  const std::vector<std::size_t> cats = {10, 20, 80};
  for (std::size_t c : cats) {
    IndexOptions options;
    options.kind = IndexKind::kSparse;
    options.num_categories = c;
    auto index = Index::Build(&db, options);
    if (!index.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   index.status().ToString().c_str());
      return 1;
    }
    indexes.push_back(std::move(index).value());
  }
  std::printf("index sizes: SST_C(10) %.0f KB, SST_C(20) %.0f KB, "
              "SST_C(80) %.0f KB; database %.0f KB\n\n",
              indexes[0].build_info().index_bytes / 1024.0,
              indexes[1].build_info().index_bytes / 1024.0,
              indexes[2].build_info().index_bytes / 1024.0,
              static_cast<double>(db.DataBytes()) / 1024.0);

  // The paper's sequential scan builds the full cumulative table for every
  // suffix (Section 4.3: O(M L^2 |Q|), times nearly flat in epsilon);
  // Theorem-1 pruning is part of the *index* algorithms. We report both the
  // paper baseline (full) and a pruned scan as a stronger modern baseline.
  core::SeqScanOptions full_scan;
  full_scan.prune = false;

  std::printf("%-6s %14s %14s %14s %14s %14s %10s\n", "eps", "SeqScan-full",
              "SeqScan-pruned", "SST_C(10)", "SST_C(20)", "SST_C(80)",
              "answers");
  std::vector<Value> epsilons = {5, 10, 20, 30, 40, 50};
  if (quick) epsilons = {5, 30};
  for (const Value eps : epsilons) {
    Timer full_timer;
    std::size_t answers = 0;
    for (const seqdb::Sequence& q : queries) {
      answers += core::SeqScan(db, q, eps, full_scan).size();
    }
    const double full_time =
        full_timer.Seconds() / static_cast<double>(queries.size());
    Timer pruned_timer;
    for (const seqdb::Sequence& q : queries) {
      core::SeqScan(db, q, eps);
    }
    const double pruned_time =
        pruned_timer.Seconds() / static_cast<double>(queries.size());
    double index_times[3];
    for (std::size_t i = 0; i < indexes.size(); ++i) {
      index_times[i] = bench::AvgIndexQuerySeconds(indexes[i], queries, eps);
    }
    std::printf("%-6.0f %14.4f %14.4f %14.4f %14.4f %14.4f %10zu\n", eps,
                full_time, pruned_time, index_times[0], index_times[1],
                index_times[2], answers / queries.size());
  }
  return 0;
}

}  // namespace
}  // namespace tswarp

int main(int argc, char** argv) { return tswarp::Run(argc, argv); }
