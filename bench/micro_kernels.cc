// Micro benchmarks of the DTW kernels and the suffix-tree construction /
// merge substrates (google-benchmark).
//
// Extra flags (stripped before google-benchmark sees argv):
//   --json   also write BENCH_micro_kernels.json (see report_json.h); the
//            active SIMD backend is recorded, so baselines taken under
//            TSWARP_SIMD=scalar and the host's best backend are directly
//            diffable.

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "report_json.h"

#include "categorize/categorizer.h"
#include "core/match.h"
#include "core/tree_search.h"
#include "storage/buffer_manager.h"
#include "storage/paged_file.h"
#include "common/random.h"
#include "datagen/generators.h"
#include "dtw/alignment.h"
#include "dtw/base.h"
#include "dtw/dtw.h"
#include "dtw/envelope.h"
#include "dtw/simd.h"
#include "dtw/warping_table.h"
#include "seqdb/sequence_database.h"
#include "suffixtree/merge.h"
#include "suffixtree/suffix_tree.h"
#include "suffixtree/tree_view.h"
#include "suffixtree/ukkonen.h"
#include "suffixtree/symbol_database.h"

namespace tswarp {
namespace {

std::vector<Value> RandomSequence(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Value> v;
  v.reserve(n);
  Value x = rng.Uniform(20, 80);
  for (std::size_t i = 0; i < n; ++i) {
    x += rng.Gaussian(0, 1);
    v.push_back(x);
  }
  return v;
}

void BM_DtwDistance(benchmark::State& state) {
  const auto a = RandomSequence(static_cast<std::size_t>(state.range(0)), 1);
  const auto b = RandomSequence(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtw::DtwDistance(a, b));
  }
  state.SetItemsProcessed(state.iterations() *
                          state.range(0) * state.range(0));
}
BENCHMARK(BM_DtwDistance)->Arg(16)->Arg(64)->Arg(256);

void BM_DtwWithinThreshold(benchmark::State& state) {
  const auto a = RandomSequence(static_cast<std::size_t>(state.range(0)), 1);
  const auto b = RandomSequence(static_cast<std::size_t>(state.range(0)), 2);
  const Value eps = static_cast<Value>(state.range(1));
  for (auto _ : state) {
    Value d = 0;
    benchmark::DoNotOptimize(dtw::DtwWithinThreshold(a, b, eps, &d));
  }
}
BENCHMARK(BM_DtwWithinThreshold)
    ->Args({64, 5})
    ->Args({64, 50})
    ->Args({256, 5})
    ->Args({256, 50});

void BM_WarpingTablePushRow(benchmark::State& state) {
  const auto q = RandomSequence(static_cast<std::size_t>(state.range(0)), 3);
  // Values are pre-generated so the loop times PushRowValue, not the RNG.
  Rng rng(4);
  std::vector<Value> values(512);
  for (Value& v : values) v = rng.Uniform(0, 100);
  dtw::WarpingTable table(q);
  std::size_t i = 0;
  for (auto _ : state) {
    table.PushRowValue(values[i]);
    i = i + 1 == values.size() ? 0 : i + 1;
    if (table.NumRows() > 512) table.PopRows(512);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WarpingTablePushRow)->Arg(20)->Arg(100);

suffixtree::SymbolDatabase CategorizedStocks(std::size_t num_sequences,
                                             std::size_t num_categories) {
  datagen::StockOptions opt;
  opt.num_sequences = num_sequences;
  seqdb::SequenceDatabase db = datagen::GenerateStocks(opt);
  const std::vector<Value> values = categorize::CollectValues(db);
  auto alphabet =
      categorize::BuildMaxEntropy(values, num_categories).value();
  categorize::CategorizedDatabase converted =
      categorize::ConvertDatabase(db, &alphabet);
  return suffixtree::SymbolDatabase(std::move(converted.sequences));
}

void BM_SuffixTreeBuild(benchmark::State& state) {
  const suffixtree::SymbolDatabase symbols = CategorizedStocks(
      static_cast<std::size_t>(state.range(0)),
      static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    suffixtree::SuffixTree tree = suffixtree::BuildSuffixTree(symbols);
    benchmark::DoNotOptimize(tree.NumNodes());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(symbols.TotalSymbols()));
}
BENCHMARK(BM_SuffixTreeBuild)->Args({50, 20})->Args({50, 120})->Args({200, 20});

void BM_SuffixTreeMerge(benchmark::State& state) {
  const suffixtree::SymbolDatabase a = CategorizedStocks(
      static_cast<std::size_t>(state.range(0)), 40);
  const suffixtree::SymbolDatabase b = CategorizedStocks(
      static_cast<std::size_t>(state.range(0)), 40);
  const suffixtree::SuffixTree ta = suffixtree::BuildSuffixTree(a);
  const suffixtree::SuffixTree tb = suffixtree::BuildSuffixTree(b);
  for (auto _ : state) {
    suffixtree::SuffixTree out;
    suffixtree::MergeTrees(ta, tb, &out);
    benchmark::DoNotOptimize(out.NumNodes());
  }
}
BENCHMARK(BM_SuffixTreeMerge)->Arg(20)->Arg(50);


void BM_DtwLowerBound(benchmark::State& state) {
  Rng rng(5);
  const auto q = RandomSequence(static_cast<std::size_t>(state.range(0)), 1);
  std::vector<dtw::Interval> cs;
  for (int i = 0; i < state.range(0); ++i) {
    const Value v = rng.Uniform(20, 80);
    cs.push_back({v - 1.0, v + 1.0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtw::DtwLowerBound(q, cs));
  }
}
BENCHMARK(BM_DtwLowerBound)->Arg(20)->Arg(100);

// --- Envelope lower-bound cascade kernels -------------------------------
// Kernel cost of each cascade stage, plus the prune rate the LB_Keogh /
// LB_Improved pair achieves on random-walk candidates at a given epsilon
// (reported as the "pruned" counter).

void BM_BuildEnvelope(benchmark::State& state) {
  const auto q = RandomSequence(static_cast<std::size_t>(state.range(0)), 1);
  const auto band = static_cast<Pos>(state.range(1));
  for (auto _ : state) {
    dtw::QueryEnvelope env(q, band);
    benchmark::DoNotOptimize(env.reach());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildEnvelope)
    ->Args({20, 0})
    ->Args({20, 5})
    ->Args({100, 0})
    ->Args({100, 10});

void BM_LbKeogh(benchmark::State& state) {
  const auto q = RandomSequence(static_cast<std::size_t>(state.range(0)), 1);
  const auto s = RandomSequence(static_cast<std::size_t>(state.range(0)), 2);
  const dtw::QueryEnvelope env(q, static_cast<Pos>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtw::LbKeogh(env, s));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LbKeogh)->Args({20, 0})->Args({100, 0})->Args({100, 10});

void BM_LbImproved(benchmark::State& state) {
  const auto q = RandomSequence(static_cast<std::size_t>(state.range(0)), 1);
  const auto s = RandomSequence(static_cast<std::size_t>(state.range(0)), 2);
  const dtw::QueryEnvelope env(q, static_cast<Pos>(state.range(1)));
  dtw::EnvelopeScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dtw::LbImproved(env, q, s, kInfinity, &scratch));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LbImproved)->Args({20, 0})->Args({100, 0})->Args({100, 10});

void BM_DtwWithinThresholdLb(benchmark::State& state) {
  const auto q = RandomSequence(static_cast<std::size_t>(state.range(0)), 1);
  const auto s = RandomSequence(static_cast<std::size_t>(state.range(0)), 2);
  const dtw::QueryEnvelope env(q, 0);
  const Value eps = static_cast<Value>(state.range(1));
  dtw::EnvelopeScratch scratch;
  for (auto _ : state) {
    Value d = 0;
    benchmark::DoNotOptimize(
        dtw::DtwWithinThresholdLb(q, s, env, eps, &d, &scratch));
  }
}
BENCHMARK(BM_DtwWithinThresholdLb)
    ->Args({64, 5})
    ->Args({64, 50})
    ->Args({256, 5})
    ->Args({256, 50});

void BM_LbCascadePruneRate(benchmark::State& state) {
  // Screens `kCandidates` random-walk candidates against one query; the
  // "pruned" counter is the cascade's kill rate at this epsilon, the
  // "exact" counter what still reaches the exact kernel.
  constexpr int kCandidates = 256;
  const auto q = RandomSequence(20, 1);
  const dtw::QueryEnvelope env(q, 0);
  std::vector<std::vector<Value>> candidates;
  for (int i = 0; i < kCandidates; ++i) {
    candidates.push_back(
        RandomSequence(10 + static_cast<std::size_t>(i) % 30,
                       static_cast<std::uint64_t>(i) + 2));
  }
  const Value eps = static_cast<Value>(state.range(0));
  dtw::EnvelopeScratch scratch;
  std::int64_t pruned = 0, exact = 0;
  for (auto _ : state) {
    for (const auto& s : candidates) {
      if (dtw::LbImproved(env, q, s, eps, &scratch) > eps) {
        ++pruned;
        continue;
      }
      ++exact;
      Value d = 0;
      benchmark::DoNotOptimize(
          dtw::DtwWithinThresholdLb(q, s, env, eps, &d, &scratch));
    }
  }
  state.counters["pruned"] =
      benchmark::Counter(static_cast<double>(pruned),
                         benchmark::Counter::kAvgIterations);
  state.counters["exact"] =
      benchmark::Counter(static_cast<double>(exact),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_LbCascadePruneRate)->Arg(5)->Arg(20)->Arg(80);

void BM_SummaryLb(benchmark::State& state) {
  // The node-summary screen kernel: per-query-element min distance to a
  // handful of value hulls, summed with early abandon. Args: query length
  // and hull count (the driver passes at most 6 = prefix + subtree + 4
  // label segments).
  const auto q = RandomSequence(static_cast<std::size_t>(state.range(0)), 1);
  const auto k = static_cast<std::size_t>(state.range(1));
  Rng rng(7);
  std::vector<Value> lo(k), hi(k);
  for (std::size_t i = 0; i < k; ++i) {
    const Value center = rng.Uniform(20, 80);
    lo[i] = center - rng.Uniform(0.5, 5.0);
    hi[i] = center + rng.Uniform(0.5, 5.0);
  }
  const auto& kernels = dtw::simd::Kernels();
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels.summary_lb(
        q.data(), lo.data(), hi.data(), k, q.size(), kInfinity));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(1));
}
BENCHMARK(BM_SummaryLb)
    ->ArgNames({"n", "hulls"})
    ->Args({20, 2})
    ->Args({20, 6})
    ->Args({100, 2})
    ->Args({100, 6});

void BM_SummaryLbEarlyAbandon(benchmark::State& state) {
  // Same kernel with a cap it crosses almost immediately (hulls far from
  // the query): the block-granular early abandon should make cost nearly
  // independent of n.
  const auto q = RandomSequence(static_cast<std::size_t>(state.range(0)), 1);
  const std::vector<Value> lo = {500.0, 620.0};
  const std::vector<Value> hi = {510.0, 640.0};
  const auto& kernels = dtw::simd::Kernels();
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels.summary_lb(
        q.data(), lo.data(), hi.data(), lo.size(), q.size(), 10.0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SummaryLbEarlyAbandon)->Arg(20)->Arg(100)->Arg(400);

void BM_DtwAlign(benchmark::State& state) {
  const auto a = RandomSequence(static_cast<std::size_t>(state.range(0)), 8);
  const auto b = RandomSequence(static_cast<std::size_t>(state.range(0)), 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtw::DtwAlign(a, b).distance);
  }
}
BENCHMARK(BM_DtwAlign)->Arg(32)->Arg(128);

// --- Buffer-manager kernels ---------------------------------------------
// Cost of the pin/latch protocol in isolation: guard acquire+release on
// the hit path, shard scaling under concurrent pins, and the two eviction
// policies under a steady miss stream. Setup/teardown run on thread 0;
// google-benchmark barriers the other threads until the iteration loop.

struct ScratchPool {
  std::filesystem::path path;
  std::optional<storage::PagedFile> file;
  std::optional<storage::BufferManager> mgr;
};

void SetUpPool(const char* name, std::uint64_t pages,
               const storage::BufferManagerOptions& options,
               ScratchPool* pool) {
  pool->path = std::filesystem::temp_directory_path() /
               (std::string("tswarp_micro_") + name + "_" +
                std::to_string(::getpid()) + ".dat");
  auto file = storage::PagedFile::Create(pool->path.string());
  if (!file.ok()) std::abort();
  pool->file.emplace(std::move(file).value());
  std::vector<std::byte> page(storage::PagedFile::kPageSize, std::byte{7});
  for (std::uint64_t p = 0; p < pages; ++p) {
    if (!pool->file->WritePage(p, page).ok()) std::abort();
  }
  pool->mgr.emplace(&*pool->file, options);
}

void TearDownPool(ScratchPool* pool) {
  pool->mgr.reset();
  pool->file.reset();
  std::filesystem::remove(pool->path);
}

void BM_PageGuardAcquireRelease(benchmark::State& state) {
  // Pure hit path, one shard, no contention: the floor cost of one
  // Pin (shard lookup + pin count + shared latch) and guard release.
  static ScratchPool pool;
  constexpr std::uint64_t kPages = 64;
  if (state.thread_index() == 0) {
    storage::BufferManagerOptions options;
    options.capacity_pages = kPages;
    options.num_shards = 1;
    SetUpPool("guard", kPages, options, &pool);
  }
  std::uint64_t p = 0;
  for (auto _ : state) {
    auto guard = pool.mgr->Pin(p, storage::PinIntent::kRead);
    if (!guard.ok()) std::abort();
    benchmark::DoNotOptimize(guard->bytes().data());
    p = (p + 1) % kPages;
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) TearDownPool(&pool);
}
BENCHMARK(BM_PageGuardAcquireRelease);

void BM_BufferManagerHitPath(benchmark::State& state) {
  // Same hit stream through 1 shard (the old single-mutex pool) vs 8
  // shards, at 1/4/8 concurrent pinning threads.
  static ScratchPool pool;
  constexpr std::uint64_t kPages = 256;
  if (state.thread_index() == 0) {
    storage::BufferManagerOptions options;
    options.capacity_pages = kPages;
    options.num_shards = static_cast<std::size_t>(state.range(0));
    SetUpPool("hitpath", kPages, options, &pool);
  }
  auto p = static_cast<std::uint64_t>(state.thread_index()) * 17;
  for (auto _ : state) {
    auto guard = pool.mgr->Pin(p % kPages, storage::PinIntent::kRead);
    if (!guard.ok()) std::abort();
    benchmark::DoNotOptimize(guard->bytes().data());
    p += 13;  // Co-prime stride: every thread sweeps every shard.
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    state.counters["conflicts"] = benchmark::Counter(
        static_cast<double>(pool.mgr->stats().shard_conflicts));
    TearDownPool(&pool);
  }
}
BENCHMARK(BM_BufferManagerHitPath)
    ->ArgName("shards")
    ->Arg(1)
    ->Arg(8)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8);

void BM_BufferManagerEviction(benchmark::State& state) {
  // Steady-state miss stream: a sequential sweep over twice the pool
  // capacity, so every pin evicts. Compares the LRU list against the
  // CLOCK ring on the same access pattern.
  static ScratchPool pool;
  constexpr std::uint64_t kPages = 64;
  if (state.thread_index() == 0) {
    storage::BufferManagerOptions options;
    options.capacity_pages = kPages / 2;
    options.num_shards = 1;
    options.eviction = state.range(0) == 0
                           ? storage::EvictionPolicyKind::kLru
                           : storage::EvictionPolicyKind::kClock;
    SetUpPool("evict", kPages, options, &pool);
  }
  std::uint64_t p = 0;
  for (auto _ : state) {
    auto guard = pool.mgr->Pin(p, storage::PinIntent::kRead);
    if (!guard.ok()) std::abort();
    benchmark::DoNotOptimize(guard->bytes().data());
    p = (p + 1) % kPages;
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    state.counters["evictions"] = benchmark::Counter(
        static_cast<double>(pool.mgr->stats().evictions));
    TearDownPool(&pool);
  }
}
BENCHMARK(BM_BufferManagerEviction)
    ->ArgName("policy")  // 0 = LRU, 1 = CLOCK
    ->Arg(0)
    ->Arg(1);

void BM_UkkonenVsInsertion(benchmark::State& state) {
  // Single sequence with a small alphabet: Ukkonen's linear construction
  // vs the suffix-insertion builder.
  Rng rng(6);
  suffixtree::SymbolDatabase db;
  suffixtree::SymbolSequence s;
  for (int i = 0; i < state.range(0); ++i) {
    s.push_back(static_cast<Symbol>(rng.UniformInt(0, 3)));
  }
  db.Add(std::move(s));
  const bool use_ukkonen = state.range(1) != 0;
  for (auto _ : state) {
    if (use_ukkonen) {
      benchmark::DoNotOptimize(
          suffixtree::BuildSuffixTreeUkkonen(db, 0).NumNodes());
    } else {
      suffixtree::SuffixTreeBuilder builder(&db);
      builder.InsertSequence(0);
      benchmark::DoNotOptimize(builder.Build().NumNodes());
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_UkkonenVsInsertion)
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({20000, 0})
    ->Args({20000, 1});

// --- Unified search driver vs pre-refactor inlined DFS ------------------
// The categorized tree search used to be one hand-inlined serial loop in
// tree_search.cc; it is now an instantiation of the generic
// core::SearchDriver<CategoryModel>. This pair measures the abstraction
// cost on the same index / query / epsilon: BM_CategorizedSearchDriver
// goes through the driver (the shipping path), BM_CategorizedInlinedDfs
// through a line-for-line copy of the pre-refactor loop. Regression
// budget for the driver: within 2% of the inlined baseline. The `lb` arg
// toggles the envelope verification cascade on both sides.

struct SearchFixture {
  SearchFixture()
      : db(datagen::GenerateStocks(StockOpts())),
        alphabet(categorize::BuildMaxEntropy(categorize::CollectValues(db),
                                             /*num_categories=*/32)
                     .value()),
        symbols(std::move(
            categorize::ConvertDatabase(db, &alphabet).sequences)),
        tree(suffixtree::BuildSuffixTree(symbols)) {
    // A subsequence of the data, so the search does real emission work.
    const std::span<const Value> s = db.Subsequence(0, 10, 12);
    query.assign(s.begin(), s.end());
  }

  static datagen::StockOptions StockOpts() {
    datagen::StockOptions opt;
    opt.num_sequences = 40;
    return opt;
  }

  seqdb::SequenceDatabase db;
  categorize::Alphabet alphabet;
  suffixtree::SymbolDatabase symbols;
  suffixtree::SuffixTree tree;
  std::vector<Value> query;
};

const SearchFixture& SharedSearchFixture() {
  static const SearchFixture* fixture = new SearchFixture();
  return *fixture;
}

constexpr Value kSearchFixtureEps = 10.0;

/// Hand-rolled copy of the serial categorized (dense ST_C, range-mode)
/// search loop exactly as it stood before the SearchDriver refactor:
/// interval rows, Theorem-1 pruning, endpoint/envelope/exact verification
/// cascade. Kept only as the benchmark baseline — do not grow features
/// here; the shipping kernel is core::SearchDriver.
class InlinedCategorizedDfs {
 public:
  InlinedCategorizedDfs(const SearchFixture& f, Value eps,
                        const dtw::QueryEnvelope* env)
      : tree_(f.tree),
        alphabet_(f.alphabet),
        db_(f.db),
        query_(f.query),
        eps_(eps),
        env_(env),
        table_(query_, /*band=*/0) {}

  const std::vector<core::Match>& Run() {
    frames_.clear();
    PushFrame(tree_.Root());
    while (!frames_.empty()) {
      Frame& f = frames_.back();
      suffixtree::Children& children = ChildrenAt(frames_.size() - 1);
      if (f.edge >= children.edges.size()) {
        frames_.pop_back();
        if (!frames_.empty()) {
          table_.PopRows(frames_.back().pushed);
          frames_.back().pushed = 0;
          ++frames_.back().edge;
        }
        continue;
      }

      const suffixtree::Children::Edge& edge = children.edges[f.edge];
      const std::span<const Symbol> label = children.Label(edge);
      std::size_t pushed = 0;
      bool descend = true;
      occ_buf_.clear();
      bool occ_collected = false;
      for (const Symbol sym : label) {
        const dtw::Interval iv = alphabet_.ToInterval(sym);
        table_.PushRowInterval(iv.lb, iv.ub);
        ++pushed;
        ++stats_.rows_pushed;
        stats_.unshared_rows += tree_.SubtreeOccCount(edge.child);
        const Value dist = table_.LastColumn();
        if (dist <= eps_) {
          if (!occ_collected) {
            tree_.CollectSubtreeOccurrences(edge.child, &occ_buf_);
            occ_collected = true;
          }
          EmitCandidates(dist);
        }
        if (table_.RowMin() > eps_) {
          ++stats_.branches_pruned;
          descend = false;
          break;
        }
      }
      if (descend) {
        f.pushed = pushed;
        PushFrame(edge.child);
      } else {
        table_.PopRows(pushed);
        ++f.edge;
      }
    }
    std::sort(answers_.begin(), answers_.end(), core::MatchLess);
    stats_.answers = answers_.size();
    return answers_;
  }

  const core::SearchStats& stats() const { return stats_; }

 private:
  struct Frame {
    suffixtree::NodeId node;
    std::size_t edge = 0;
    std::size_t pushed = 0;
  };

  suffixtree::Children& ChildrenAt(std::size_t depth) {
    if (children_stack_.size() <= depth) children_stack_.resize(depth + 1);
    return children_stack_[depth];
  }

  void PushFrame(suffixtree::NodeId node) {
    ++stats_.nodes_visited;
    frames_.push_back({node, 0, 0});
    tree_.GetChildren(node, &ChildrenAt(frames_.size() - 1));
  }

  void EmitCandidates(Value dist) {
    const auto depth = static_cast<Pos>(table_.NumRows());
    for (const suffixtree::OccurrenceRec& occ : occ_buf_) {
      PostProcess(occ.seq, occ.pos, depth, dist);
    }
  }

  void PostProcess(SeqId seq, Pos start, Pos len, Value /*dist*/) {
    ++stats_.candidates;
    const std::span<const Value> sub = db_.Subsequence(seq, start, len);
    if (dtw::EndpointLowerBound(query_, sub) > eps_) {
      ++stats_.endpoint_rejections;
      return;
    }
    if (env_ != nullptr) {
      ++stats_.lb_invocations;
      if (dtw::LbImproved(*env_, query_, sub, eps_, &lb_scratch_) > eps_) {
        ++stats_.lb_pruned;
        return;
      }
    }
    ++stats_.exact_dtw_calls;
    Value d = 0.0;
    if (env_ != nullptr) {
      if (!dtw::DtwWithinThresholdLb(query_, sub, *env_, eps_, &d,
                                     &lb_scratch_)) {
        return;
      }
    } else if (!dtw::DtwWithinThreshold(query_, sub, eps_, &d)) {
      return;
    }
    answers_.push_back({seq, start, len, d});
  }

  const suffixtree::TreeView& tree_;
  const categorize::Alphabet& alphabet_;
  const seqdb::SequenceDatabase& db_;
  std::span<const Value> query_;
  const Value eps_;
  const dtw::QueryEnvelope* env_;
  dtw::WarpingTable table_;
  dtw::EnvelopeScratch lb_scratch_;
  std::vector<suffixtree::OccurrenceRec> occ_buf_;
  std::vector<Frame> frames_;
  std::vector<suffixtree::Children> children_stack_;
  std::vector<core::Match> answers_;
  core::SearchStats stats_;
};

void BM_CategorizedSearchDriver(benchmark::State& state) {
  const SearchFixture& fixture = SharedSearchFixture();
  core::TreeSearchConfig config;
  config.tree = &fixture.tree;
  config.db = &fixture.db;
  config.alphabet = &fixture.alphabet;
  config.use_lower_bound = state.range(0) != 0;
  std::size_t answers = 0;
  for (auto _ : state) {
    const std::vector<core::Match> out =
        core::TreeSearch(config, fixture.query, kSearchFixtureEps);
    benchmark::DoNotOptimize(out.data());
    answers = out.size();
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_CategorizedSearchDriver)->ArgName("lb")->Arg(0)->Arg(1);

void BM_CategorizedInlinedDfs(benchmark::State& state) {
  const SearchFixture& fixture = SharedSearchFixture();
  const bool use_lb = state.range(0) != 0;
  std::size_t answers = 0;
  for (auto _ : state) {
    // The pre-refactor search built the envelope per query too.
    std::optional<dtw::QueryEnvelope> env;
    if (use_lb) env.emplace(fixture.query, /*band=*/0);
    InlinedCategorizedDfs dfs(fixture, kSearchFixtureEps,
                              env ? &*env : nullptr);
    const std::vector<core::Match>& out = dfs.Run();
    benchmark::DoNotOptimize(out.data());
    answers = out.size();
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_CategorizedInlinedDfs)->ArgName("lb")->Arg(0)->Arg(1);

/// Console output plus a JSON mirror of every per-iteration measurement
/// (aggregates and errored runs are skipped; the JSON holds raw entries).
class JsonCapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCapturingReporter(bench::JsonReport* report)
      : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      bench::JsonReport::Counters counters;
      for (const auto& [name, counter] : run.counters) {
        counters.emplace_back(name, counter.value);
      }
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      report_->Add(run.benchmark_name(),
                   run.real_accumulated_time / iters * 1e9,
                   std::move(counters));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench::JsonReport* report_;
};

}  // namespace
}  // namespace tswarp

int main(int argc, char** argv) {
  const bool json = tswarp::bench::StripJsonFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (json) {
    tswarp::bench::JsonReport report("micro_kernels");
    tswarp::JsonCapturingReporter reporter(&report);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    report.Write();
  } else {
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();
  return 0;
}
