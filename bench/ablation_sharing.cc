// Ablation A2: the R_d reduction factor — sharing cumulative-table rows
// across suffixes with common prefixes (the tree) vs building one table
// per suffix (pruned sequential scan). Both use Theorem-1 pruning and the
// same exact distances, so the difference isolates table sharing plus the
// tree's ability to prune whole subtrees at once.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/index.h"
#include "core/seq_scan.h"

namespace tswarp {
namespace {

using bench::PaperQueries;
using bench::PaperStockDb;
using bench::Timer;
using core::Index;
using core::IndexKind;
using core::IndexOptions;
using core::SearchStats;

int Run(int argc, char** argv) {
  const bool quick = bench::HasFlag(argc, argv, "--quick");
  const auto num_queries = static_cast<std::size_t>(
      bench::FlagValue(argc, argv, "--queries", quick ? 3 : 10));
  const seqdb::SequenceDatabase db = PaperStockDb();
  const std::vector<seqdb::Sequence> queries = PaperQueries(db, num_queries);

  // Exact dictionary tree: same distances as the scan, rows shared via
  // common prefixes.
  IndexOptions options;
  options.kind = IndexKind::kSuffixTree;
  auto index = Index::Build(&db, options);
  if (!index.ok()) return 1;

  std::printf("Ablation A2: table sharing (R_d), %zu queries\n",
              queries.size());
  std::printf("R_d = rows an unshared per-suffix filter would build / rows "
              "the shared tree builds (paper Section 4.3).\n\n");

  std::printf("Uncategorized ST (raw values share almost no prefixes):\n");
  std::printf("%-6s %12s %12s %16s %8s\n", "eps", "tree(s)", "scan(s)",
              "rows(tree)", "R_d");
  for (const Value eps : std::vector<Value>{2, 5, 10, 20}) {
    SearchStats total{};
    Timer t1;
    for (const seqdb::Sequence& q : queries) {
      SearchStats s;
      index->Search(q, eps, {}, &s);
      total.rows_pushed += s.rows_pushed;
      total.unshared_rows += s.unshared_rows;
    }
    const double tree_time = t1.Seconds();
    Timer t2;
    for (const seqdb::Sequence& q : queries) {
      core::SeqScan(db, q, eps);
    }
    const double scan_time = t2.Seconds();
    std::printf("%-6.0f %12.4f %12.4f %16llu %8.2f\n", eps,
                tree_time / static_cast<double>(queries.size()),
                scan_time / static_cast<double>(queries.size()),
                static_cast<unsigned long long>(total.rows_pushed),
                static_cast<double>(total.unshared_rows) /
                    static_cast<double>(total.rows_pushed));
  }

  std::printf("\nCategorized SST_C (coarser categories -> longer shared "
              "prefixes -> larger R_d):\n");
  std::printf("%-6s %12s %16s %16s %8s\n", "#cat", "time (s)",
              "rows(shared)", "rows(unshared)", "R_d");
  for (const std::size_t c : std::vector<std::size_t>{10, 40, 160}) {
    IndexOptions cat_options;
    cat_options.kind = IndexKind::kSparse;
    cat_options.num_categories = c;
    auto cat_index = Index::Build(&db, cat_options);
    if (!cat_index.ok()) continue;
    SearchStats total{};
    Timer timer;
    for (const seqdb::Sequence& q : queries) {
      SearchStats s;
      cat_index->Search(q, 10.0, {}, &s);
      total.rows_pushed += s.rows_pushed;
      total.unshared_rows += s.unshared_rows;
    }
    std::printf("%-6zu %12.4f %16llu %16llu %8.2f\n", c,
                timer.Seconds() / static_cast<double>(queries.size()),
                static_cast<unsigned long long>(total.rows_pushed),
                static_cast<unsigned long long>(total.unshared_rows),
                static_cast<double>(total.unshared_rows) /
                    static_cast<double>(total.rows_pushed));
  }
  return 0;
}

}  // namespace
}  // namespace tswarp

int main(int argc, char** argv) { return tswarp::Run(argc, argv); }
