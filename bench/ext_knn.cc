// Extension E2: k-nearest-subsequence search. Reports the adaptive
// branch-and-bound search time vs the cost of an equivalent range search
// at the k-th distance (which the caller cannot know a priori — the k-NN
// search discovers it while pruning).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/index.h"

namespace tswarp {
namespace {

using bench::PaperQueries;
using bench::PaperStockDb;
using bench::Timer;
using core::Index;
using core::IndexKind;
using core::IndexOptions;

int Run(int argc, char** argv) {
  const bool quick = bench::HasFlag(argc, argv, "--quick");
  const auto num_queries = static_cast<std::size_t>(
      bench::FlagValue(argc, argv, "--queries", quick ? 3 : 10));
  const seqdb::SequenceDatabase db = PaperStockDb();
  const std::vector<seqdb::Sequence> queries = PaperQueries(db, num_queries);

  IndexOptions options;
  options.kind = IndexKind::kSparse;
  options.num_categories = 60;
  auto index = Index::Build(&db, options);
  if (!index.ok()) return 1;

  std::printf("Extension E2: k-NN subsequence search, SST_C(ME,60), "
              "%zu queries\n\n", queries.size());
  std::printf("%-6s %12s %14s %16s %16s\n", "k", "knn (s)",
              "kth distance", "rows pushed", "oracle range(s)");
  for (const std::size_t k : std::vector<std::size_t>{1, 10, 100, 1000}) {
    double knn_seconds = 0.0;
    double kth_sum = 0.0;
    std::uint64_t rows = 0;
    std::vector<Value> kth_per_query;
    for (const seqdb::Sequence& q : queries) {
      core::SearchStats stats;
      Timer timer;
      const auto result = index->SearchKnn(q, k, {}, &stats);
      knn_seconds += timer.Seconds();
      rows += stats.rows_pushed;
      const Value kth = result.empty() ? 0.0 : result.back().distance;
      kth_per_query.push_back(kth);
      kth_sum += kth;
    }
    // Oracle: a range search at exactly the k-th distance (the best a
    // range query could do if it magically knew the right epsilon).
    double oracle_seconds = 0.0;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      Timer timer;
      index->Search(queries[i], kth_per_query[i]);
      oracle_seconds += timer.Seconds();
    }
    std::printf("%-6zu %12.4f %14.3f %16llu %16.4f\n", k,
                knn_seconds / static_cast<double>(queries.size()),
                kth_sum / static_cast<double>(queries.size()),
                static_cast<unsigned long long>(rows),
                oracle_seconds / static_cast<double>(queries.size()));
  }
  return 0;
}

}  // namespace
}  // namespace tswarp

int main(int argc, char** argv) { return tswarp::Run(argc, argv); }
