// Ablation A3: categorization method quality — EL vs ME vs k-means at the
// same category count. Reports entropy, index size, filter selectivity
// (candidates per answer) and query time. ME should achieve near-maximal
// entropy and the best time/size tradeoff on skewed (stock) data, which is
// why the paper picks ME-based SST_C for Tables 2-3.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "categorize/categorizer.h"
#include "core/index.h"

namespace tswarp {
namespace {

using bench::PaperQueries;
using bench::PaperStockDb;
using bench::Timer;
using categorize::Method;
using core::Index;
using core::IndexKind;
using core::IndexOptions;
using core::SearchStats;

int Run(int argc, char** argv) {
  const bool quick = bench::HasFlag(argc, argv, "--quick");
  const auto num_queries = static_cast<std::size_t>(
      bench::FlagValue(argc, argv, "--queries", quick ? 3 : 10));
  const Value epsilon =
      static_cast<Value>(bench::FlagValue(argc, argv, "--epsilon", 10));
  const seqdb::SequenceDatabase db = PaperStockDb();
  const std::vector<seqdb::Sequence> queries = PaperQueries(db, num_queries);
  const std::vector<Value> values = categorize::CollectValues(db);

  std::printf("Ablation A3: categorization methods, SST_C, epsilon %.0f, "
              "%zu queries\n\n", epsilon, queries.size());
  std::printf("%-8s %-6s %10s %12s %12s %14s %12s\n", "method", "#cat",
              "entropy", "index KB", "time (s)", "candidates", "answers");
  for (const std::size_t c : std::vector<std::size_t>{10, 40, 120}) {
    for (const Method m : {Method::kEqualLength, Method::kMaxEntropy,
                           Method::kKMeans}) {
      IndexOptions options;
      options.kind = IndexKind::kSparse;
      options.method = m;
      options.num_categories = c;
      auto index = Index::Build(&db, options);
      if (!index.ok()) continue;
      auto alphabet = categorize::Build(m, values, c, options.seed);
      const double entropy =
          alphabet.ok() ? categorize::CategorizationEntropy(values, *alphabet)
                        : -1.0;
      SearchStats total{};
      Timer timer;
      for (const seqdb::Sequence& q : queries) {
        SearchStats s;
        index->Search(q, epsilon, {}, &s);
        total.candidates += s.candidates;
        total.answers += s.answers;
      }
      std::printf("%-8s %-6zu %10.3f %12.0f %12.4f %14llu %12llu\n",
                  categorize::MethodToString(m), c, entropy,
                  index->build_info().index_bytes / 1024.0,
                  timer.Seconds() / static_cast<double>(queries.size()),
                  static_cast<unsigned long long>(total.candidates),
                  static_cast<unsigned long long>(total.answers));
    }
  }
  std::printf("\n(max entropy at c categories is log(c): %.3f / %.3f / "
              "%.3f)\n", std::log(10.0), std::log(40.0), std::log(120.0));
  return 0;
}

}  // namespace
}  // namespace tswarp

int main(int argc, char** argv) { return tswarp::Run(argc, argv); }
