// Reproduces Table 2 of the paper: average query processing time of
// SimSearch-ST, SimSearch-ST_C (EL, ME) and SimSearch-SST_C (EL, ME) on
// the stock data with distance threshold epsilon = 30, across category
// counts {10, 20, 40, 80, 120, 160, 200, 250, 300}.
//
// Expected shape (paper): categorized searches get faster as categories
// increase, then slow down past an optimum; SST_C <= ST_C at similar
// index sizes; ME beats EL at small category counts.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "categorize/categorizer.h"
#include "core/index.h"

namespace tswarp {
namespace {

using bench::AvgIndexQuerySeconds;
using bench::PaperQueries;
using bench::PaperStockDb;
using categorize::Method;
using core::Index;
using core::IndexKind;
using core::IndexOptions;

double BuildAndMeasure(const seqdb::SequenceDatabase& db,
                       const std::vector<seqdb::Sequence>& queries,
                       IndexKind kind, Method method, std::size_t categories,
                       Value epsilon) {
  IndexOptions options;
  options.kind = kind;
  options.method = method;
  options.num_categories = categories;
  auto index = Index::Build(&db, options);
  if (!index.ok()) return -1;
  return AvgIndexQuerySeconds(*index, queries, epsilon);
}

int Run(int argc, char** argv) {
  const bool quick = bench::HasFlag(argc, argv, "--quick");
  const auto num_queries = static_cast<std::size_t>(
      bench::FlagValue(argc, argv, "--queries", quick ? 5 : 10));
  const Value epsilon =
      static_cast<Value>(bench::FlagValue(argc, argv, "--epsilon", 30));

  const seqdb::SequenceDatabase db = PaperStockDb();
  const std::vector<seqdb::Sequence> queries = PaperQueries(db, num_queries);

  std::printf("Table 2: average query time (sec); stock data, epsilon %.0f, "
              "%zu queries (avg len 20)\n",
              epsilon, queries.size());
  std::printf("(paper: ST 55.3s flat; ST_C/SST_C drop with #categories to "
              "an optimum, then rise; ME < EL at low counts)\n\n");

  IndexOptions st_options;
  st_options.kind = IndexKind::kSuffixTree;
  auto st = Index::Build(&db, st_options);
  const double st_time =
      st.ok() ? AvgIndexQuerySeconds(*st, queries, epsilon) : -1;

  std::printf("%-6s %14s %14s %14s %14s %14s\n", "#cat", "SimSearch-ST",
              "ST_C(EL)", "ST_C(ME)", "SST_C(EL)", "SST_C(ME)");
  std::vector<std::size_t> counts = {10, 20, 40, 80, 120, 160, 200, 250, 300};
  if (quick) counts = {10, 40, 160};
  for (std::size_t c : counts) {
    const double stc_el = BuildAndMeasure(db, queries,
                                          IndexKind::kCategorized,
                                          Method::kEqualLength, c, epsilon);
    const double stc_me = BuildAndMeasure(db, queries,
                                          IndexKind::kCategorized,
                                          Method::kMaxEntropy, c, epsilon);
    const double sstc_el = BuildAndMeasure(db, queries, IndexKind::kSparse,
                                           Method::kEqualLength, c, epsilon);
    const double sstc_me = BuildAndMeasure(db, queries, IndexKind::kSparse,
                                           Method::kMaxEntropy, c, epsilon);
    std::printf("%-6zu %14.4f %14.4f %14.4f %14.4f %14.4f\n", c, st_time,
                stc_el, stc_me, sstc_el, sstc_me);
  }
  return 0;
}

}  // namespace
}  // namespace tswarp

int main(int argc, char** argv) { return tswarp::Run(argc, argv); }
