#ifndef TSWARP_BENCH_BENCH_UTIL_H_
#define TSWARP_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/index.h"
#include "datagen/generators.h"
#include "seqdb/sequence_database.h"

namespace tswarp::bench {

/// Wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// The paper's stock data set stand-in: 545 sequences, average length 232
/// (Section 7). Fixed seed for reproducible tables.
inline seqdb::SequenceDatabase PaperStockDb() {
  datagen::StockOptions options;  // Defaults already mirror the paper.
  return datagen::GenerateStocks(options);
}

/// The paper's query workload: average length 20, stratified 20/50/30 by
/// the sequences' average price.
inline std::vector<seqdb::Sequence> PaperQueries(
    const seqdb::SequenceDatabase& db, std::size_t num_queries) {
  datagen::QueryWorkloadOptions options;
  options.num_queries = num_queries;
  return datagen::ExtractQueries(db, options);
}

/// Parses "--flag value" style integer flags; returns `fallback` if absent.
inline long FlagValue(int argc, char** argv, const char* flag,
                      long fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atol(argv[i + 1]);
  }
  return fallback;
}

inline bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// Average query time of `index` over `queries` at threshold epsilon.
inline double AvgIndexQuerySeconds(const core::Index& index,
                                   const std::vector<seqdb::Sequence>& queries,
                                   Value epsilon) {
  Timer timer;
  for (const seqdb::Sequence& q : queries) {
    const auto matches = index.Search(q, epsilon);
    if (matches.size() == static_cast<std::size_t>(-1)) std::abort();
  }
  return timer.Seconds() / static_cast<double>(queries.size());
}

}  // namespace tswarp::bench

#endif  // TSWARP_BENCH_BENCH_UTIL_H_
