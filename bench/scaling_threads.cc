// Thread-scaling of the parallel query engine: for each index kind (ST,
// ST_C, SST_C) measures the average query time of the serial searcher
// (num_threads = 0) against intra-query parallel searches and batched
// inter-query fan-out at 1, 2, 4, 8 threads, and reports the speedups.
//
// The workload is the paper's stock data with a generous epsilon so
// post-processing (candidate verification with exact DTW) dominates —
// exactly the part of SimSearch that parallelizes across subtrees and
// candidates. Expected shape on a multi-core machine: near-linear batch
// speedup, >= 2x intra-query speedup at 4 threads; on a single core all
// ratios hover around 1x.
//
// SimSearch-ST is excluded by default: it has no post-processing stage and
// its exact-value tree makes single queries take tens of seconds on the
// paper workload (Table 2 reports 55.3s); pass --st to include it.
//
// With --disk the bench additionally builds one disk-backed SST_C bundle
// and reopens it twice — once with a single-shard (single-mutex) buffer
// pool, once with the sharded pool — and compares multi-thread query
// throughput through each. This isolates the buffer-manager lock from the
// search work: the sharded rows should pull ahead at >= 4 threads.
//
//   scaling_threads [--queries N] [--epsilon E] [--categories C] [--quick]
//                   [--st] [--disk] [--json]
//
// --json writes BENCH_scaling_threads.json (see report_json.h) with the
// raw per-query times, so thread-scaling baselines can be diffed across
// sessions and SIMD backends.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "report_json.h"
#include "common/thread_pool.h"
#include "core/index.h"

namespace tswarp {
namespace {

using bench::PaperQueries;
using bench::PaperStockDb;
using bench::Timer;
using core::Index;
using core::IndexKind;
using core::IndexOptions;
using core::QueryOptions;

double AvgQuerySeconds(const Index& index,
                       const std::vector<seqdb::Sequence>& queries,
                       Value epsilon, std::size_t num_threads) {
  QueryOptions options;
  options.num_threads = num_threads;
  Timer timer;
  for (const seqdb::Sequence& q : queries) {
    const auto matches = index.Search(q, epsilon, options);
    if (matches.size() == static_cast<std::size_t>(-1)) std::abort();
  }
  return timer.Seconds() / static_cast<double>(queries.size());
}

double BatchSeconds(const Index& index,
                    const std::vector<seqdb::Sequence>& queries,
                    Value epsilon, std::size_t num_threads) {
  std::vector<std::vector<Value>> batch(queries.begin(), queries.end());
  QueryOptions options;
  options.num_threads = num_threads;
  Timer timer;
  const auto results = index.SearchBatch(batch, {epsilon}, options);
  if (results.size() != batch.size()) std::abort();
  return timer.Seconds() / static_cast<double>(queries.size());
}

int Run(int argc, char** argv) {
  const bool json = bench::StripJsonFlag(&argc, argv);
  bench::JsonReport report("scaling_threads");
  const bool quick = bench::HasFlag(argc, argv, "--quick");
  const bool include_st = bench::HasFlag(argc, argv, "--st");
  const auto num_queries = static_cast<std::size_t>(
      bench::FlagValue(argc, argv, "--queries", quick ? 8 : 24));
  const Value epsilon =
      static_cast<Value>(bench::FlagValue(argc, argv, "--epsilon", 40));
  const auto categories = static_cast<std::size_t>(
      bench::FlagValue(argc, argv, "--categories", 20));

  const seqdb::SequenceDatabase db = PaperStockDb();
  const std::vector<seqdb::Sequence> queries = PaperQueries(db, num_queries);
  std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
  if (quick) thread_counts = {1, 4};

  std::printf("Thread scaling; stock data, epsilon %.0f, %zu queries, "
              "%zu categories, %zu hardware threads\n\n",
              epsilon, queries.size(), categories,
              ThreadPool::HardwareThreads());
  std::printf("%-6s %10s", "kind", "serial(s)");
  for (const std::size_t t : thread_counts) {
    char head[32];
    std::snprintf(head, sizeof head, "query@%zu", t);
    std::printf(" %8s", head);
    std::snprintf(head, sizeof head, "batch@%zu", t);
    std::printf(" %8s", head);
  }
  std::printf("\n");

  // Environment stamp: speedups from this file only make sense relative
  // to the core count of the machine that produced them.
  report.Add("env/hardware_threads", 0.0,
             {{"hardware_threads",
               static_cast<double>(ThreadPool::HardwareThreads())}});

  std::vector<IndexKind> kinds = {IndexKind::kCategorized, IndexKind::kSparse};
  if (include_st) kinds.insert(kinds.begin(), IndexKind::kSuffixTree);
  for (const IndexKind kind : kinds) {
    IndexOptions options;
    options.kind = kind;
    options.num_categories = categories;
    auto index = Index::Build(&db, options);
    if (!index.ok()) {
      std::fprintf(stderr, "build %s failed: %s\n", IndexKindToString(kind),
                   index.status().ToString().c_str());
      return 1;
    }
    const double serial = AvgQuerySeconds(*index, queries, epsilon, 0);
    std::printf("%-6s %10.4f", IndexKindToString(kind), serial);
    const std::string kind_name = IndexKindToString(kind);
    report.Add(kind_name + "/serial", serial * 1e9);
    for (const std::size_t t : thread_counts) {
      const double intra = AvgQuerySeconds(*index, queries, epsilon, t);
      const double batch = BatchSeconds(*index, queries, epsilon, t);
      std::printf(" %7.2fx %7.2fx", serial / intra, serial / batch);
      // efficiency = speedup / threads: 1.0 is perfect scaling, and the
      // ceiling drops to hardware_threads / t once t oversubscribes.
      report.Add(kind_name + "/query@" + std::to_string(t), intra * 1e9,
                 {{"speedup", serial / intra},
                  {"efficiency", serial / intra / static_cast<double>(t)}});
      report.Add(kind_name + "/batch@" + std::to_string(t), batch * 1e9,
                 {{"speedup", serial / batch},
                  {"efficiency", serial / batch / static_cast<double>(t)}});
    }
    std::printf("\n");
  }
  std::printf("\n(columns are speedups vs the serial searcher; query@T = "
              "one query split across T workers, batch@T = independent "
              "queries fanned across T workers)\n");

  if (bench::HasFlag(argc, argv, "--disk")) {
    // Disk-backed pool contention: the same bundle through a single-mutex
    // pool (1 shard — PR 1 behaviour) vs the sharded manager.
    const auto dir = std::filesystem::temp_directory_path() /
                     ("tswarp_scaling_disk_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir);
    IndexOptions build_options;
    build_options.kind = IndexKind::kSparse;
    build_options.num_categories = categories;
    build_options.disk_path = (dir / "sst_c").string();
    build_options.disk_batch_sequences = 32;
    // Keep the pool small relative to the bundle so page faults (and the
    // frame-table locking around them) stay on the hot path.
    build_options.disk_pool_pages = 64;
    if (auto built = Index::Build(&db, build_options); !built.ok()) {
      std::fprintf(stderr, "disk build failed: %s\n",
                   built.status().ToString().c_str());
      std::filesystem::remove_all(dir);
      return 1;
    }

    std::printf("\nDisk-backed SST_C (%zu pool pages/region): batch "
                "throughput, single-mutex pool vs sharded\n\n",
                build_options.disk_pool_pages);
    std::printf("%-14s %10s", "pool", "serial(s)");
    for (const std::size_t t : thread_counts) {
      char head[32];
      std::snprintf(head, sizeof head, "batch@%zu", t);
      std::printf(" %8s", head);
    }
    std::printf(" %10s\n", "conflicts");

    struct PoolConfig {
      const char* name;
      std::size_t shards;  // 1 = single global mutex; 0 = auto-sharded.
    };
    for (const PoolConfig& pool :
         {PoolConfig{"single-mutex", 1}, PoolConfig{"sharded", 0}}) {
      IndexOptions open_options = build_options;
      open_options.disk_pool_shards = pool.shards;
      auto index = Index::Open(&db, open_options);
      if (!index.ok()) {
        std::fprintf(stderr, "disk open failed: %s\n",
                     index.status().ToString().c_str());
        std::filesystem::remove_all(dir);
        return 1;
      }
      const double serial = AvgQuerySeconds(*index, queries, epsilon, 0);
      std::printf("%-14s %10.4f", pool.name, serial);
      report.Add(std::string("disk/") + pool.name + "/serial", serial * 1e9);
      for (const std::size_t t : thread_counts) {
        const double batch = BatchSeconds(*index, queries, epsilon, t);
        std::printf(" %7.2fx", serial / batch);
        report.Add(std::string("disk/") + pool.name + "/batch@" +
                       std::to_string(t),
                   batch * 1e9,
                   {{"speedup", serial / batch},
                    {"efficiency",
                     serial / batch / static_cast<double>(t)}});
      }
      const auto stats = index->PoolStats();
      std::printf(" %10llu\n",
                  stats ? static_cast<unsigned long long>(
                              stats->Total().shard_conflicts)
                        : 0ULL);
    }
    std::printf("\n(same bundle, same queries; only the frame-table "
                "sharding differs — the conflicts column counts contended "
                "shard-lock acquisitions)\n");
    std::filesystem::remove_all(dir);
  }
  if (json && !report.Write()) return 1;
  return 0;
}

}  // namespace
}  // namespace tswarp

int main(int argc, char** argv) { return tswarp::Run(argc, argv); }
