// Ablation A4: disk-resident traversal — the effect that explains the
// paper's Table 2 ordering. In RAM the exact ST is fast on modern
// hardware; but the ST bundle is ~60x the database size, so when the tree
// must stream through a small buffer pool (the paper's 1999 setting), the
// compact SST_C wins decisively. Reports query time and pool misses for
// ST vs SST_C at several pool budgets.
//
// Second axis: the read path. The buffered path pays a private-pool
// warm-up on every open (each process faults the whole bundle through
// its own page cache); the mmap path maps the finalized v2 bundle and
// serves straight out of the kernel page cache, which is shared and
// already warm. --json records cold-open latency and query throughput
// for both modes, plus a cold_open_speedup counter CI asserts on.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/index.h"
#include "report_json.h"
#include "storage/mmap_file.h"
#include "suffixtree/disk_tree.h"

namespace tswarp {
namespace {

using bench::JsonReport;
using bench::PaperQueries;
using bench::Timer;
using core::Index;
using core::IndexKind;
using core::IndexOptions;

/// Cold-open cost of one read path: time to Open the bundle and be able
/// to serve with no further I/O stalls. For the buffered path that means
/// faulting the whole tree into the private pool (the full DFS below);
/// the mmap path is ready at Open (validation + madvise, the kernel page
/// cache already holds the bundle).
double ColdOpenSeconds(const std::string& base, storage::IoMode mode,
                       std::size_t pool_pages, int reps) {
  double total = 0;
  for (int r = 0; r < reps; ++r) {
    suffixtree::DiskTreeOptions options;
    options.io_mode = mode;
    options.pool_pages = pool_pages;
    Timer timer;
    auto tree = suffixtree::DiskSuffixTree::Open(base, options);
    if (!tree.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   tree.status().ToString().c_str());
      return -1;
    }
    if (mode == storage::IoMode::kBuffered) {
      (*tree)->HintSequentialScan();
      std::vector<suffixtree::OccurrenceRec> occs;
      (*tree)->CollectSubtreeOccurrences((*tree)->Root(), &occs);
    }
    total += timer.Seconds();
  }
  return total / reps;
}

int Run(int argc, char** argv) {
  const bool json = bench::StripJsonFlag(&argc, argv);
  JsonReport report("ablation_disk");
  const bool quick = bench::HasFlag(argc, argv, "--quick");
  const auto num_queries = static_cast<std::size_t>(
      bench::FlagValue(argc, argv, "--queries", quick ? 2 : 5));
  const Value epsilon =
      static_cast<Value>(bench::FlagValue(argc, argv, "--epsilon", 10));

  // A smaller stock set keeps the on-disk ST build quick while preserving
  // the ST-vs-SST_C size ratio.
  datagen::StockOptions stock_options;
  stock_options.num_sequences = quick ? 60 : 150;
  const seqdb::SequenceDatabase db = datagen::GenerateStocks(stock_options);
  const std::vector<seqdb::Sequence> queries = PaperQueries(db, num_queries);

  const auto dir = std::filesystem::temp_directory_path() /
                   ("tswarp_ablation_disk_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);

  std::printf("Ablation A4: disk-resident indexes, %zu stock sequences, "
              "epsilon %.0f, %zu queries\n\n",
              db.size(), epsilon, queries.size());
  std::printf("%-8s %-10s %12s %12s %14s %12s %12s\n", "index", "pool",
              "size KB", "time (s)", "pool misses", "readaheads",
              "conflicts");

  struct Config {
    IndexKind kind;
    const char* name;
  };
  for (const Config& config :
       {Config{IndexKind::kSuffixTree, "ST"},
        Config{IndexKind::kSparse, "SST_C"}}) {
    for (const std::size_t pool_pages : std::vector<std::size_t>{16, 4096}) {
      IndexOptions options;
      options.kind = config.kind;
      options.num_categories = 20;
      options.disk_path =
          (dir / (std::string(config.name) + "_" +
                  std::to_string(pool_pages))).string();
      options.disk_batch_sequences = 32;
      options.disk_pool_pages = pool_pages;
      options.disk_io_mode = storage::IoMode::kBuffered;
      auto index = Index::Build(&db, options);
      if (!index.ok()) {
        std::fprintf(stderr, "build failed: %s\n",
                     index.status().ToString().c_str());
        continue;
      }
      const auto before = index->disk_tree()->PoolStats().Total();
      Timer timer;
      std::uint64_t answers = 0;
      for (const seqdb::Sequence& q : queries) {
        answers += index->Search(q, epsilon).size();
      }
      const double per_query =
          timer.Seconds() / static_cast<double>(queries.size());
      const auto after = index->disk_tree()->PoolStats().Total();
      std::printf("%-8s %-10zu %12.0f %12.4f %14llu %12llu %12llu\n",
                  config.name, pool_pages,
                  index->build_info().index_bytes / 1024.0,
                  per_query,
                  static_cast<unsigned long long>(after.misses -
                                                  before.misses),
                  static_cast<unsigned long long>(after.readaheads -
                                                  before.readaheads),
                  static_cast<unsigned long long>(after.shard_conflicts -
                                                  before.shard_conflicts));
      report.Add(std::string("pool/") + config.name + "@" +
                     std::to_string(pool_pages),
                 per_query * 1e9,
                 {{"pool_misses",
                   static_cast<double>(after.misses - before.misses)}});
    }
  }
  std::printf("\n(with a 16-page pool the ST traversal thrashes — this is "
              "the regime behind the paper's slow ST in Table 2 — while "
              "the compact SST_C mostly fits)\n");

  // --- Read-path axis: mmap zero-copy vs buffered pool over one bundle.
  IndexOptions io_build;
  io_build.kind = IndexKind::kSparse;
  io_build.num_categories = 20;
  io_build.disk_path = (dir / "iomode").string();
  io_build.disk_batch_sequences = 32;
  io_build.disk_io_mode = storage::IoMode::kBuffered;
  {
    auto built = Index::Build(&db, io_build);
    if (!built.ok()) {
      std::fprintf(stderr, "io-mode build failed: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }
  }
  // Pool sized to hold the bundle: the buffered cold open is a warm-up
  // cost, not a thrashing artifact.
  const std::size_t warm_pool_pages = 4096;
  const int reps = quick ? 3 : 5;
  const double buffered_open = ColdOpenSeconds(
      io_build.disk_path, storage::IoMode::kBuffered, warm_pool_pages, reps);
  const double mmap_open = ColdOpenSeconds(
      io_build.disk_path, storage::IoMode::kMmap, warm_pool_pages, reps);
  if (buffered_open < 0 || mmap_open < 0) return 1;
  const double speedup = mmap_open > 0 ? buffered_open / mmap_open : 0;

  std::printf("\nRead paths over one SST_C bundle (cold open = Open + "
              "warm-up to first stall-free query):\n");
  std::printf("%-10s %16s %16s\n", "path", "cold open (ms)",
              "query (ms)");
  for (const storage::IoMode mode : {storage::IoMode::kBuffered,
                                     storage::IoMode::kMmap}) {
    IndexOptions reopen = io_build;
    reopen.disk_io_mode = mode;
    reopen.disk_pool_pages = warm_pool_pages;
    auto index = Index::Open(&db, reopen);
    if (!index.ok()) {
      std::fprintf(stderr, "io-mode reopen failed: %s\n",
                   index.status().ToString().c_str());
      return 1;
    }
    Timer timer;
    std::uint64_t answers = 0;
    for (const seqdb::Sequence& q : queries) {
      answers += index->Search(q, epsilon).size();
    }
    const double per_query =
        timer.Seconds() / static_cast<double>(queries.size());
    const bool mapped = mode == storage::IoMode::kMmap;
    const double open_seconds = mapped ? mmap_open : buffered_open;
    std::printf("%-10s %16.3f %16.3f\n", storage::IoModeToString(mode),
                open_seconds * 1e3, per_query * 1e3);
    JsonReport::Counters open_counters;
    if (mapped) {
      open_counters.emplace_back("cold_open_speedup", speedup);
      open_counters.emplace_back(
          "mapped_bytes",
          static_cast<double>(index->MappedStats().mapped_bytes));
    }
    report.Add(std::string("open/") + storage::IoModeToString(mode),
               open_seconds * 1e9, std::move(open_counters));
    report.Add(std::string("query/") + storage::IoModeToString(mode),
               per_query * 1e9,
               {{"answers", static_cast<double>(answers)}});
  }
  std::printf("(mmap cold open: %.0fx faster — the kernel page cache is "
              "already warm and shared; the buffered path refills a "
              "private pool per process)\n", speedup);

  std::filesystem::remove_all(dir);
  if (json && !report.Write()) return 1;
  return 0;
}

}  // namespace
}  // namespace tswarp

int main(int argc, char** argv) { return tswarp::Run(argc, argv); }
