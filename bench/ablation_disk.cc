// Ablation A4: disk-resident traversal — the effect that explains the
// paper's Table 2 ordering. In RAM the exact ST is fast on modern
// hardware; but the ST bundle is ~60x the database size, so when the tree
// must stream through a small buffer pool (the paper's 1999 setting), the
// compact SST_C wins decisively. Reports query time and pool misses for
// ST vs SST_C at several pool budgets.

#include <cstdio>
#include <filesystem>
#include <vector>

#include "bench_util.h"
#include "core/index.h"

namespace tswarp {
namespace {

using bench::PaperQueries;
using bench::Timer;
using core::Index;
using core::IndexKind;
using core::IndexOptions;

int Run(int argc, char** argv) {
  const bool quick = bench::HasFlag(argc, argv, "--quick");
  const auto num_queries = static_cast<std::size_t>(
      bench::FlagValue(argc, argv, "--queries", quick ? 2 : 5));
  const Value epsilon =
      static_cast<Value>(bench::FlagValue(argc, argv, "--epsilon", 10));

  // A smaller stock set keeps the on-disk ST build quick while preserving
  // the ST-vs-SST_C size ratio.
  datagen::StockOptions stock_options;
  stock_options.num_sequences = quick ? 60 : 150;
  const seqdb::SequenceDatabase db = datagen::GenerateStocks(stock_options);
  const std::vector<seqdb::Sequence> queries = PaperQueries(db, num_queries);

  const auto dir = std::filesystem::temp_directory_path() /
                   ("tswarp_ablation_disk_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);

  std::printf("Ablation A4: disk-resident indexes, %zu stock sequences, "
              "epsilon %.0f, %zu queries\n\n",
              db.size(), epsilon, queries.size());
  std::printf("%-8s %-10s %12s %12s %14s %12s %12s\n", "index", "pool",
              "size KB", "time (s)", "pool misses", "readaheads",
              "conflicts");

  struct Config {
    IndexKind kind;
    const char* name;
  };
  for (const Config& config :
       {Config{IndexKind::kSuffixTree, "ST"},
        Config{IndexKind::kSparse, "SST_C"}}) {
    for (const std::size_t pool_pages : std::vector<std::size_t>{16, 4096}) {
      IndexOptions options;
      options.kind = config.kind;
      options.num_categories = 20;
      options.disk_path =
          (dir / (std::string(config.name) + "_" +
                  std::to_string(pool_pages))).string();
      options.disk_batch_sequences = 32;
      options.disk_pool_pages = pool_pages;
      auto index = Index::Build(&db, options);
      if (!index.ok()) {
        std::fprintf(stderr, "build failed: %s\n",
                     index.status().ToString().c_str());
        continue;
      }
      const auto before = index->disk_tree()->PoolStats().Total();
      Timer timer;
      std::uint64_t answers = 0;
      for (const seqdb::Sequence& q : queries) {
        answers += index->Search(q, epsilon).size();
      }
      const auto after = index->disk_tree()->PoolStats().Total();
      std::printf("%-8s %-10zu %12.0f %12.4f %14llu %12llu %12llu\n",
                  config.name, pool_pages,
                  index->build_info().index_bytes / 1024.0,
                  timer.Seconds() / static_cast<double>(queries.size()),
                  static_cast<unsigned long long>(after.misses -
                                                  before.misses),
                  static_cast<unsigned long long>(after.readaheads -
                                                  before.readaheads),
                  static_cast<unsigned long long>(after.shard_conflicts -
                                                  before.shard_conflicts));
    }
  }
  std::printf("\n(with a 16-page pool the ST traversal thrashes — this is "
              "the regime behind the paper's slow ST in Table 2 — while "
              "the compact SST_C mostly fits)\n");
  std::filesystem::remove_all(dir);
  return 0;
}

}  // namespace
}  // namespace tswarp

int main(int argc, char** argv) { return tswarp::Run(argc, argv); }
