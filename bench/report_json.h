#ifndef TSWARP_BENCH_REPORT_JSON_H_
#define TSWARP_BENCH_REPORT_JSON_H_

#include <string>
#include <utility>
#include <vector>

namespace tswarp::bench {

/// Machine-readable benchmark trajectory: a bench binary run with --json
/// appends every measurement here and writes BENCH_<bench>.json next to
/// the working directory. Committed baselines of these files let later
/// sessions diff kernel performance against this one without re-deriving
/// the harness ("bench trajectory").
///
/// Schema (stable; extend by adding keys, never repurposing them):
///   {
///     "bench": "<binary name>",
///     "simd_backend": "<active dtw::simd backend>",
///     "entries": [
///       {"name": "...", "real_time_ns": <double>,
///        "counters": {"<k>": <double>, ...}},
///       ...
///     ]
///   }
class JsonReport {
 public:
  using Counters = std::vector<std::pair<std::string, double>>;

  /// `bench_name` becomes both the "bench" field and the output file name
  /// BENCH_<bench_name>.json.
  explicit JsonReport(std::string bench_name);

  /// Records one measurement. `real_time_ns` is the per-iteration (or
  /// per-query) wall time in nanoseconds.
  void Add(std::string name, double real_time_ns, Counters counters = {});

  /// Writes BENCH_<bench>.json into `dir` (default: current directory).
  /// Returns false (after printing to stderr) if the file cannot be
  /// written.
  bool Write(const std::string& dir = ".") const;

 private:
  struct Entry {
    std::string name;
    double real_time_ns;
    Counters counters;
  };

  std::string bench_name_;
  std::vector<Entry> entries_;
};

/// True if `--json` appears in argv; removes it so downstream flag parsing
/// (google-benchmark's, bench_util's) never sees it.
bool StripJsonFlag(int* argc, char** argv);

}  // namespace tswarp::bench

#endif  // TSWARP_BENCH_REPORT_JSON_H_
