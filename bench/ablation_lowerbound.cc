// Ablation A6: the envelope lower-bound cascade (LB_Keogh / LB_Improved
// prefilter + prefix-abandoning exact kernel) on vs off, for the
// categorized tree searches and the SeqScan baseline, across thresholds.
// Reports the exact-DTW call reduction and the cascade's prune rate; the
// match sets are asserted identical (the cascade admits no false
// dismissals), so any divergence aborts the run.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.h"
#include "core/index.h"
#include "core/seq_scan.h"

namespace tswarp {
namespace {

using bench::PaperQueries;
using bench::PaperStockDb;
using bench::Timer;
using core::Index;
using core::IndexKind;
using core::IndexOptions;
using core::Match;
using core::QueryOptions;
using core::SearchStats;

void ExpectIdentical(const std::vector<Match>& a,
                     const std::vector<Match>& b, const char* what) {
  if (a.size() != b.size()) {
    std::fprintf(stderr, "FATAL: %s: lb on/off answer sets differ "
                 "(%zu vs %zu)\n", what, a.size(), b.size());
    std::abort();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i]) || a[i].distance != b[i].distance) {
      std::fprintf(stderr, "FATAL: %s: answer %zu differs\n", what, i);
      std::abort();
    }
  }
}

int Run(int argc, char** argv) {
  const bool quick = bench::HasFlag(argc, argv, "--quick");
  const auto num_queries = static_cast<std::size_t>(
      bench::FlagValue(argc, argv, "--queries", quick ? 3 : 10));
  const seqdb::SequenceDatabase db = PaperStockDb();
  const std::vector<seqdb::Sequence> queries = PaperQueries(db, num_queries);

  IndexOptions options;
  options.kind = IndexKind::kSparse;
  options.num_categories = 40;
  auto index = Index::Build(&db, options);
  if (!index.ok()) return 1;

  std::printf("Ablation A6: envelope lower-bound cascade, SST_C(ME,40), "
              "%zu queries\n\n", queries.size());
  std::printf("%-6s %10s %10s %9s %12s %12s %10s %10s\n", "eps", "lb(s)",
              "nolb(s)", "speedup", "dtw(lb)", "dtw(nolb)", "lb_pruned",
              "prune%");
  for (const Value eps : std::vector<Value>{2, 5, 10, 20, 40}) {
    SearchStats with_lb{}, without_lb{};
    std::vector<std::vector<Match>> lb_answers, plain_answers;
    Timer t1;
    for (const seqdb::Sequence& q : queries) {
      SearchStats s;
      lb_answers.push_back(index->Search(q, eps, {}, &s));
      with_lb.Merge(s);
    }
    const double lb_time = t1.Seconds();
    QueryOptions no_lb;
    no_lb.use_lower_bound = false;
    Timer t2;
    for (const seqdb::Sequence& q : queries) {
      SearchStats s;
      plain_answers.push_back(index->Search(q, eps, no_lb, &s));
      without_lb.Merge(s);
    }
    const double plain_time = t2.Seconds();
    for (std::size_t i = 0; i < queries.size(); ++i) {
      ExpectIdentical(plain_answers[i], lb_answers[i], "tree search");
    }
    std::printf("%-6.0f %10.4f %10.4f %8.1fx %12llu %12llu %10llu %9.1f%%\n",
                eps, lb_time / static_cast<double>(queries.size()),
                plain_time / static_cast<double>(queries.size()),
                plain_time / lb_time,
                static_cast<unsigned long long>(with_lb.exact_dtw_calls),
                static_cast<unsigned long long>(without_lb.exact_dtw_calls),
                static_cast<unsigned long long>(with_lb.lb_pruned),
                with_lb.lb_invocations == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(with_lb.lb_pruned) /
                          static_cast<double>(with_lb.lb_invocations));
  }

  std::printf("\nSeqScan cascade (running LB_Keogh cut), same queries\n\n");
  std::printf("%-6s %10s %10s %9s %14s %14s %10s\n", "eps", "lb(s)",
              "nolb(s)", "speedup", "rows(lb)", "rows(nolb)", "lb_pruned");
  for (const Value eps : std::vector<Value>{2, 10, 40}) {
    SearchStats with_lb{}, without_lb{};
    Timer t1;
    for (const seqdb::Sequence& q : queries) {
      SearchStats s;
      const auto fast = core::SeqScan(db, q, eps, {}, &s);
      with_lb.Merge(s);
      core::SeqScanOptions no_lb;
      no_lb.use_lower_bound = false;
      SearchStats s2;
      const auto plain = core::SeqScan(db, q, eps, no_lb, &s2);
      without_lb.Merge(s2);
      ExpectIdentical(plain, fast, "seq scan");
    }
    (void)t1;
    // Re-time each variant separately (the verification pass above mixes
    // them).
    Timer tl;
    for (const seqdb::Sequence& q : queries) core::SeqScan(db, q, eps);
    const double lb_time = tl.Seconds();
    core::SeqScanOptions no_lb;
    no_lb.use_lower_bound = false;
    Timer tp;
    for (const seqdb::Sequence& q : queries) {
      core::SeqScan(db, q, eps, no_lb);
    }
    const double plain_time = tp.Seconds();
    std::printf("%-6.0f %10.4f %10.4f %8.1fx %14llu %14llu %10llu\n", eps,
                lb_time / static_cast<double>(queries.size()),
                plain_time / static_cast<double>(queries.size()),
                plain_time / lb_time,
                static_cast<unsigned long long>(with_lb.rows_pushed),
                static_cast<unsigned long long>(without_lb.rows_pushed),
                static_cast<unsigned long long>(with_lb.lb_pruned));
  }
  return 0;
}

}  // namespace
}  // namespace tswarp

int main(int argc, char** argv) { return tswarp::Run(argc, argv); }
