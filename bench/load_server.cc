// Open-loop load generator for tswarpd: drives an in-process server with
// Poisson arrivals at a fixed offered rate and reports end-to-end latency
// percentiles. Open-loop means each request's latency is measured from its
// *scheduled* arrival time, not from when a sender thread got around to
// transmitting it — so queueing delay inside the server (and any sender
// backlog) counts against the server, as it would for real clients.
//
//   load_server [--rate QPS] [--duration S] [--senders N] [--queue N]
//               [--quick] [--json]
//
// The arrival schedule is precomputed from a fixed seed, so two runs at
// the same rate offer byte-identical workloads. 429s are expected once
// the offered rate exceeds capacity and are reported separately; any 5xx
// or transport error fails the run (exit 1), which is what the CI smoke
// job asserts on.
//
// --json writes BENCH_load_server.json (see report_json.h) with the
// latency percentiles and throughput counters for cross-session diffing.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "report_json.h"
#include "datagen/generators.h"
#include "server/client.h"
#include "server/index_handle.h"
#include "server/json.h"
#include "server/server.h"

namespace tswarp {
namespace {

using Clock = std::chrono::steady_clock;

struct Sample {
  double latency_ns;
  int status;  // HTTP status, or -1 for a transport failure.
};

std::string RequestBody(const seqdb::SequenceDatabase& db, std::size_t seq,
                        std::size_t len, double epsilon) {
  const std::span<const Value> sub = db.Subsequence(seq, 0, len);
  std::string body = "{\"query\":[";
  for (std::size_t i = 0; i < sub.size(); ++i) {
    if (i != 0) body.push_back(',');
    server::AppendJsonNumber(&body, sub[i]);
  }
  body += "],\"epsilon\":";
  server::AppendJsonNumber(&body, epsilon);
  body.push_back('}');
  return body;
}

double PercentileNs(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t n = sorted.size();
  std::size_t rank = static_cast<std::size_t>(p * static_cast<double>(n));
  if (rank >= n) rank = n - 1;
  return sorted[rank];
}

int Run(int argc, char** argv) {
  const bool json = bench::StripJsonFlag(&argc, argv);
  const bool quick = bench::HasFlag(argc, argv, "--quick");
  const double rate =
      static_cast<double>(bench::FlagValue(argc, argv, "--rate", 50));
  const double duration_s = static_cast<double>(
      bench::FlagValue(argc, argv, "--duration", quick ? 2 : 5));
  const long senders = bench::FlagValue(argc, argv, "--senders", 4);
  const long queue = bench::FlagValue(argc, argv, "--queue", 64);

  datagen::RandomWalkOptions walk;
  walk.num_sequences = 60;
  walk.avg_length = 120;
  walk.length_jitter = 15;
  walk.seed = 7;
  const seqdb::SequenceDatabase db = datagen::GenerateRandomWalks(walk);
  core::IndexOptions index_options;
  index_options.kind = core::IndexKind::kCategorized;
  index_options.num_categories = 12;
  auto index = core::Index::Build(&db, index_options);
  if (!index.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  server::IndexHandle handle(std::move(*index));
  server::ServerOptions server_options;
  server_options.queue_capacity = static_cast<std::size_t>(queue);
  server_options.connection_threads = static_cast<std::size_t>(senders);
  auto server = server::Server::Start(&handle, server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  const int port = (*server)->port();

  // A small mixed workload, round-robined across arrivals: cheap short
  // queries plus a couple of heavier ones so the latency tail is real.
  std::vector<std::string> bodies;
  for (std::size_t seq = 0; seq < 4; ++seq) {
    bodies.push_back(RequestBody(db, seq, 8, 2.0));
  }
  bodies.push_back(RequestBody(db, 4, 16, 4.0));
  bodies.push_back(RequestBody(db, 5, 16, 4.0));

  // Precomputed Poisson schedule: exponential inter-arrivals from a fixed
  // seed, so the offered workload is reproducible run to run.
  std::mt19937_64 rng(42);
  std::exponential_distribution<double> inter_arrival(rate);
  std::vector<double> arrivals_s;
  for (double t = inter_arrival(rng); t < duration_s;
       t += inter_arrival(rng)) {
    arrivals_s.push_back(t);
  }
  if (arrivals_s.empty()) {
    std::fprintf(stderr, "empty schedule (rate too low for duration)\n");
    return 1;
  }

  std::vector<Sample> samples(arrivals_s.size());
  std::atomic<std::size_t> next{0};
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> pool;
  for (long s = 0; s < senders; ++s) {
    pool.emplace_back([&] {
      auto client = server::HttpClient::Connect("127.0.0.1", port);
      while (true) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= arrivals_s.size()) break;
        const Clock::time_point scheduled =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(arrivals_s[i]));
        std::this_thread::sleep_until(scheduled);
        Sample& sample = samples[i];
        if (!client.ok()) {
          client = server::HttpClient::Connect("127.0.0.1", port);
        }
        if (!client.ok()) {
          sample = {0.0, -1};
          continue;
        }
        auto response = client->Post("/search", bodies[i % bodies.size()]);
        const auto elapsed = Clock::now() - scheduled;
        if (!response.ok()) {
          sample = {0.0, -1};
          client = StatusOr<server::HttpClient>(Status::IOError("reconnect"));
          continue;
        }
        sample.status = response->status;
        sample.latency_ns = static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count());
      }
    });
  }
  for (std::thread& t : pool) t.join();
  const double wall_s = std::chrono::duration<double>(Clock::now() - start)
                            .count();
  (*server)->Shutdown();

  std::size_t ok = 0, rejected = 0, errors = 0;
  std::vector<double> ok_latencies;
  for (const Sample& s : samples) {
    if (s.status == 200) {
      ++ok;
      ok_latencies.push_back(s.latency_ns);
    } else if (s.status == 429) {
      ++rejected;
    } else {
      ++errors;
    }
  }
  std::sort(ok_latencies.begin(), ok_latencies.end());
  const double p50 = PercentileNs(ok_latencies, 0.50);
  const double p95 = PercentileNs(ok_latencies, 0.95);
  const double p99 = PercentileNs(ok_latencies, 0.99);
  const double throughput = static_cast<double>(ok) / wall_s;

  std::printf("load_server: offered %.0f qps for %.1fs (%zu requests, "
              "%ld senders, queue %ld)\n",
              rate, duration_s, arrivals_s.size(), senders, queue);
  std::printf("  completed %zu  rejected(429) %zu  errors %zu\n", ok,
              rejected, errors);
  std::printf("  throughput %.1f qps\n", throughput);
  std::printf("  latency p50 %.2f ms  p95 %.2f ms  p99 %.2f ms\n",
              p50 / 1e6, p95 / 1e6, p99 / 1e6);

  if (json) {
    bench::JsonReport report("load_server");
    const bench::JsonReport::Counters counters = {
        {"offered_qps", rate},
        {"requests", static_cast<double>(arrivals_s.size())},
        {"completed", static_cast<double>(ok)},
        {"rejected", static_cast<double>(rejected)},
        {"errors", static_cast<double>(errors)},
        {"throughput_qps", throughput},
    };
    report.Add("latency_p50", p50, counters);
    report.Add("latency_p95", p95);
    report.Add("latency_p99", p99);
    if (!report.Write()) return 1;
  }

  // The smoke contract: the server must have answered something and never
  // have produced a 5xx / transport error under this load.
  if (ok == 0 || errors != 0) {
    std::fprintf(stderr, "load_server: FAILED (completed=%zu errors=%zu)\n",
                 ok, errors);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace tswarp

int main(int argc, char** argv) { return tswarp::Run(argc, argv); }
